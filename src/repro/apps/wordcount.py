"""Word Count (WC) — the canonical streaming micro-benchmark.

Table 2 attributes it to Twitter Heron: count word frequencies in a stream
of sentences. Dataflow::

    sentences -> flatMap(tokenize) -> windowed count per word -> sink

All operators are standard, stateless or lightly stateful: the paper uses WC
as the example of near-linear, predictable scaling (O3: "a flatMap in a WC
application scales almost linearly").
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.costs import default_cost
from repro.sps.logical import LogicalPlan, OperatorKind
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows

__all__ = ["INFO", "build"]

INFO = AppInfo(
    abbrev="WC",
    name="Word Count",
    area="Text analytics",
    description="Counts word frequencies over windows of a sentence stream",
    uses_udo=False,
    data_intensity=DataIntensity.LOW,
    origin="Twitter Heron [38]",
)

#: A small vocabulary with a Zipf-like frequency profile, approximating
#: natural-language word frequency.
_VOCABULARY = (
    ["the", "of", "and", "to", "in"] * 8
    + ["stream", "data", "query", "window", "state"] * 3
    + [
        "flink", "storm", "spark", "latency", "tuple", "operator",
        "parallel", "shuffle", "join", "filter", "source", "sink",
        "benchmark", "cluster", "node", "core",
    ]
)

_VOCAB_ARRAY = np.array(_VOCABULARY)

_SENTENCE_SCHEMA = Schema([Field("sentence", DataType.STRING)])


def _sample_sentence(rng: np.random.Generator) -> tuple:
    # One bulk bounded-integer draw consumes the bit stream exactly like
    # the equivalent sequence of scalar draws, so sampling the word
    # indices as a block keeps the sentences bit-identical to the
    # original per-word loop while shedding its Generator-call overhead.
    length = int(rng.integers(4, 10))
    idx = rng.integers(len(_VOCABULARY), size=length)
    return (" ".join(_VOCAB_ARRAY[idx].tolist()),)


def _sample_sentences_vec(
    rng: np.random.Generator, nows: np.ndarray
) -> tuple:
    # Batch-mode columnar source. Calls _sample_sentence per row in the
    # scalar order, so the RNG stream is consumed identically to the
    # per-tuple path (results stay bit-equal across batch sizes *and*
    # against the scalar engine); only the tuple-object overhead goes.
    col = np.empty(len(nows), dtype=object)
    col[:] = [_sample_sentence(rng)[0] for _ in range(len(nows))]
    return (col,), float(_SENTENCE_SCHEMA.tuple_size_bytes())


def _tokenize(values: tuple) -> list[tuple]:
    # Emit (word, 1) pairs; the count aggregation sums field 1 per word.
    return [(word, 1.0) for word in values[0].split(" ")]


def _tokenize_vec(columns: tuple) -> tuple:
    # Columnar form of _tokenize: same words in the same order, expanded
    # row-by-row with per-row fan-out counts for batch mode.  The word
    # column uses NumPy's fixed-width string dtype so downstream key
    # grouping and hash routing sort/compare it at C speed.
    words: list[str] = []
    counts: list[int] = []
    for sentence in columns[0].tolist():
        parts = sentence.split(" ")
        words.extend(parts)
        counts.append(len(parts))
    return (np.array(words), np.ones(len(words))), np.asarray(counts)


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the WC dataflow at parallelism 1."""
    plan = LogicalPlan("WC")
    plan.add_operator(
        builders.source(
            "sentences",
            make_generator(_SENTENCE_SCHEMA, _sample_sentence),
            _SENTENCE_SCHEMA,
            event_rate,
            vector_generator=_sample_sentences_vec,
        )
    )
    plan.add_operator(
        builders.flat_map(
            "tokenize",
            _tokenize,
            expected_fanout=6.5,
            vector_fn=_tokenize_vec,
            output_schema=Schema(
                [
                    Field("word", DataType.STRING),
                    Field("count", DataType.DOUBLE),
                ]
            ),
        )
    )
    counter = builders.window_agg(
        "count",
        TumblingTimeWindows(0.5),
        AggregateFunction.SUM,
        value_field=1,
        key_field=0,
        selectivity=0.02,
        # Counting is far cheaper than a generic aggregate: WC's hallmark
        # is near-linear, unsaturated scaling (paper O3).
        cost=default_cost(OperatorKind.WINDOW_AGG).scaled(0.2),
    )
    counter.metadata["key_cardinality"] = len(set(_VOCABULARY))
    plan.add_operator(counter)
    plan.add_operator(builders.sink("sink"))
    plan.connect("sentences", "tokenize")
    plan.connect("tokenize", "count")
    plan.connect("count", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
