"""Log Processing (LP) — web-server log statistics.

From the click-topology lineage: parse access-log lines, drop health-check
noise, and count status codes per window. Dataflow::

    log lines -> map(parse) -> filter(real traffic) ->
    window count per status -> sink

Standard operators only; LP behaves like WC/LR in the paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows

__all__ = ["INFO", "build"]

INFO = AppInfo(
    abbrev="LP",
    name="Log Processing",
    area="Web infrastructure",
    description="Parses access logs, filters health checks and counts "
    "status codes per window",
    uses_udo=False,
    data_intensity=DataIntensity.LOW,
    origin="click-topology [54]",
)

_STATUS_CODES = (200, 200, 200, 200, 301, 304, 404, 500, 502)
_PATHS = ("/", "/index", "/api/v1/items", "/static/app.js", "/healthz")

_SCHEMA = Schema([Field("line", DataType.STRING)])


def _sample_log_line(rng: np.random.Generator) -> tuple:
    path = _PATHS[int(rng.integers(len(_PATHS)))]
    status = _STATUS_CODES[int(rng.integers(len(_STATUS_CODES)))]
    size = int(rng.integers(200, 20_000))
    return (f"GET {path} {status} {size}",)


def _parse(values: tuple) -> tuple:
    method, path, status, size = values[0].split(" ")
    return (int(status), path, float(size))


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the LP dataflow at parallelism 1."""
    plan = LogicalPlan("LP")
    plan.add_operator(
        builders.source(
            "logs",
            make_generator(_SCHEMA, _sample_log_line),
            _SCHEMA,
            event_rate,
        )
    )
    plan.add_operator(
        builders.map_op(
            "parse",
            _parse,
            output_schema=Schema(
                [
                    Field("status", DataType.INT),
                    Field("path", DataType.STRING),
                    Field("size", DataType.DOUBLE),
                ]
            ),
        )
    )
    plan.add_operator(
        builders.filter_op(
            "traffic",
            # Health checks are the /healthz fifth of paths.
            Predicate(1, FilterFunction.NE, "/healthz",
                      selectivity_hint=0.8),
        )
    )
    status_counts = builders.window_agg(
        "status_counts",
        TumblingTimeWindows(0.5),
        AggregateFunction.COUNT,
        value_field=2,
        key_field=0,
        selectivity=0.001,
    )
    status_counts.metadata["key_cardinality"] = len(set(_STATUS_CODES))
    plan.add_operator(status_counts)
    plan.add_operator(builders.sink("sink"))
    plan.connect("logs", "parse")
    plan.connect("parse", "traffic")
    plan.connect("traffic", "status_counts")
    plan.connect("status_counts", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
