"""Linear Road (LR) — the classic stream benchmark's toll pipeline.

Table 2: variable tolling on a simulated expressway [4]. We implement the
toll-notification core: per-segment average speeds over tumbling windows
feed a toll computation; congested segments (low average speed) produce
toll notifications. Dataflow::

    position reports -> map(segment key) ->
    window avg(speed) per (xway, segment) -> UDO(toll) -> sink

Operators are standard except the cheap toll formula — the paper groups LR
with WC as standard-operator apps with consistent performance (O1).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows

__all__ = ["INFO", "build", "TollLogic"]

INFO = AppInfo(
    abbrev="LR",
    name="Linear Road",
    area="Transportation",
    description="Variable tolling: per-segment average speeds trigger "
    "toll notifications for congested segments",
    uses_udo=True,
    data_intensity=DataIntensity.LOW,
    origin="Linear Road benchmark [4]",
)

_NUM_XWAYS = 4
_NUM_SEGMENTS = 100

_SCHEMA = Schema(
    [
        Field("segment_key", DataType.INT),
        Field("vehicle_id", DataType.INT),
        Field("speed", DataType.DOUBLE),
    ]
)


def _sample_report(rng: np.random.Generator) -> tuple:
    xway = int(rng.integers(_NUM_XWAYS))
    segment = int(rng.integers(_NUM_SEGMENTS))
    # A band of segments is chronically congested.
    congested = 40 <= segment < 50
    mean_speed = 12.0 if congested else 28.0
    speed = float(max(rng.normal(mean_speed, 5.0), 0.0))
    return (
        xway * _NUM_SEGMENTS + segment,
        int(rng.integers(100_000)),
        speed,
    )


class TollLogic(OperatorLogic):
    """LR toll formula: ``toll = 2 * (40 - avg_speed)^2 / 100`` when the

    segment's average speed drops below 40 (here: below the congestion
    threshold scaled to our speed units). Consumes ``(segment, avg_speed)``
    window aggregates; emits ``(segment, toll)`` for congested segments.
    """

    threshold = 20.0

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        segment, avg_speed = tup.values
        if avg_speed >= self.threshold:
            return []
        toll = 2.0 * (self.threshold - avg_speed) ** 2 / 100.0
        return [tup.with_values((segment, toll))]


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the LR dataflow at parallelism 1."""
    plan = LogicalPlan("LR")
    plan.add_operator(
        builders.source(
            "reports",
            make_generator(_SCHEMA, _sample_report),
            _SCHEMA,
            event_rate,
        )
    )
    avg_speed = builders.window_agg(
        "segment_speed",
        TumblingTimeWindows(0.5),
        AggregateFunction.AVG,
        value_field=2,
        key_field=0,
        selectivity=0.02,
    )
    avg_speed.metadata["key_cardinality"] = _NUM_XWAYS * _NUM_SEGMENTS
    plan.add_operator(avg_speed)
    toll = builders.udo(
        "toll",
        TollLogic,
        selectivity=0.12,
        cost_scale=0.1,  # the toll formula is trivial arithmetic
        name="toll notification",
        output_schema=Schema(
            [
                Field("segment", DataType.INT),
                Field("toll", DataType.DOUBLE),
            ]
        ),
    )
    toll.metadata["key_cardinality"] = _NUM_XWAYS * _NUM_SEGMENTS
    plan.add_operator(toll)
    plan.add_operator(builders.sink("sink"))
    plan.connect("reports", "segment_speed")
    plan.connect("segment_speed", "toll")
    plan.connect("toll", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
