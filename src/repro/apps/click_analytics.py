"""Click Analytics (CA) — web clickstream statistics.

From the click-topology project: sessionize page clicks per visitor and
aggregate visit statistics per geography. Dataflow::

    clicks -> UDO(repeat-visitor sessionizer, keyed by visitor) ->
    window count per geo -> sink

CA is among the apps the paper reports benefiting strongly from
heterogeneous clusters (O5: SA, CA, SD show "exponential decrease in
latency").
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows

__all__ = ["INFO", "build", "SessionizerLogic"]

INFO = AppInfo(
    abbrev="CA",
    name="Click Analytics",
    area="Web analytics",
    description="Sessionizes page clicks per visitor and counts visits "
    "per geography over windows",
    uses_udo=True,
    data_intensity=DataIntensity.MEDIUM,
    origin="click-topology [54]",
)

_NUM_VISITORS = 50_000
_NUM_GEOS = 40
_NUM_PAGES = 2_000
_SESSION_GAP_S = 0.5

_SCHEMA = Schema(
    [
        Field("visitor", DataType.INT),
        Field("geo", DataType.INT),
        Field("page", DataType.INT),
    ]
)


def _sample_click(rng: np.random.Generator) -> tuple:
    visitor = int(rng.integers(_NUM_VISITORS))
    return (visitor, visitor % _NUM_GEOS, int(rng.integers(_NUM_PAGES)))


class SessionizerLogic(OperatorLogic):
    """Tracks per-visitor sessions (gap-based) and repeat visits.

    Emits ``(geo, session_clicks, is_repeat)`` on every click, where
    ``session_clicks`` counts clicks in the visitor's current session and
    ``is_repeat`` is 1.0 for returning visitors.
    """

    def __init__(self, session_gap_s: float = _SESSION_GAP_S) -> None:
        self._last_seen: dict[int, float] = {}
        self._session_clicks: dict[int, int] = {}
        self._sessions: dict[int, int] = {}
        self.session_gap_s = session_gap_s

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        visitor, geo, _page = tup.values
        last = self._last_seen.get(visitor)
        if last is None or now - last > self.session_gap_s:
            self._sessions[visitor] = self._sessions.get(visitor, 0) + 1
            self._session_clicks[visitor] = 0
        self._last_seen[visitor] = now
        self._session_clicks[visitor] += 1
        repeat = 1.0 if self._sessions.get(visitor, 1) > 1 else 0.0
        return [
            tup.with_values(
                (geo, float(self._session_clicks[visitor]), repeat)
            )
        ]


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the CA dataflow at parallelism 1."""
    plan = LogicalPlan("CA")
    plan.add_operator(
        builders.source(
            "clicks",
            make_generator(_SCHEMA, _sample_click),
            _SCHEMA,
            event_rate,
        )
    )
    sessionizer = builders.udo(
        "sessionize",
        SessionizerLogic,
        selectivity=1.0,
        cost_scale=4.0,
        name="gap-based sessionizer",
        output_schema=Schema(
            [
                Field("geo", DataType.INT),
                Field("session_clicks", DataType.DOUBLE),
                Field("repeat", DataType.DOUBLE),
            ]
        ),
    )
    sessionizer.metadata["key_field"] = 0
    sessionizer.metadata["key_cardinality"] = _NUM_VISITORS
    plan.add_operator(sessionizer)
    geo_stats = builders.window_agg(
        "geo_visits",
        TumblingTimeWindows(0.5),
        AggregateFunction.SUM,
        value_field=1,
        key_field=0,
        selectivity=0.01,
    )
    geo_stats.metadata["key_cardinality"] = _NUM_GEOS
    plan.add_operator(geo_stats)
    plan.add_operator(builders.sink("sink"))
    plan.connect("clicks", "sessionize")
    plan.connect("sessionize", "geo_visits")
    plan.connect("geo_visits", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
