"""Bargain Index (BI) — stock quote bargain detection.

The classic IBM System S / DSPBench finance application: compute the
volume-weighted average price (VWAP) per symbol over windows and emit a
bargain index when the ask price dips below the VWAP. Dataflow::

    trades ----> window VWAP per symbol --\\
                                           join(symbol) -> UDO(bargain) -> sink
    quotes -------------------------------/
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import (
    AggregateFunction,
    SlidingTimeWindows,
    TumblingTimeWindows,
)

__all__ = ["INFO", "build", "BargainLogic"]

INFO = AppInfo(
    abbrev="BI",
    name="Bargain Index",
    area="Finance",
    description="Joins per-symbol VWAP with ask quotes and emits a "
    "bargain index when asks dip below VWAP",
    uses_udo=True,
    data_intensity=DataIntensity.MEDIUM,
    origin="IBM System S / DSPBench [13]",
)

_NUM_SYMBOLS = 200

_TRADE_SCHEMA = Schema(
    [
        Field("symbol", DataType.INT),
        Field("price", DataType.DOUBLE),
        Field("volume", DataType.DOUBLE),
    ]
)
_QUOTE_SCHEMA = Schema(
    [
        Field("symbol", DataType.INT),
        Field("ask", DataType.DOUBLE),
        Field("ask_size", DataType.DOUBLE),
    ]
)


def _base_price(symbol: int) -> float:
    return 20.0 + (symbol % 50) * 3.0


def _sample_trade(rng: np.random.Generator) -> tuple:
    symbol = int(rng.integers(_NUM_SYMBOLS))
    price = _base_price(symbol) * float(rng.uniform(0.97, 1.03))
    return (symbol, price, float(rng.integers(100, 5_000)))


def _sample_quote(rng: np.random.Generator) -> tuple:
    symbol = int(rng.integers(_NUM_SYMBOLS))
    ask = _base_price(symbol) * float(rng.uniform(0.94, 1.04))
    return (symbol, ask, float(rng.integers(100, 2_000)))


class BargainLogic(OperatorLogic):
    """Computes the bargain index from joined (vwap, quote) pairs.

    Input values are ``(symbol, vwap, symbol, ask, ask_size)``; emits
    ``(symbol, bargain_index)`` when ask < vwap, where the index weights
    the discount by the available size.
    """

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        symbol, vwap, _symbol2, ask, ask_size = tup.values
        if ask >= vwap:
            return []
        index = (vwap - ask) * ask_size
        return [tup.with_values((symbol, index))]


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the BI dataflow at parallelism 1 (rate split 50/50)."""
    trade_rate = event_rate / 2.0
    quote_rate = event_rate / 2.0
    plan = LogicalPlan("BI")
    plan.add_operator(
        builders.source(
            "trades",
            make_generator(_TRADE_SCHEMA, _sample_trade),
            _TRADE_SCHEMA,
            trade_rate,
        )
    )
    plan.add_operator(
        builders.source(
            "quotes",
            make_generator(_QUOTE_SCHEMA, _sample_quote),
            _QUOTE_SCHEMA,
            quote_rate,
        )
    )
    # VWAP approximated as windowed mean of trade prices weighted upstream:
    # price*volume / volume needs two aggregates; we use AVG(price) as the
    # standard single-pass approximation used by DSPBench's implementation.
    vwap = builders.window_agg(
        "vwap",
        TumblingTimeWindows(0.5),
        AggregateFunction.AVG,
        value_field=1,
        key_field=0,
        selectivity=0.02,
    )
    vwap.metadata["key_cardinality"] = _NUM_SYMBOLS
    plan.add_operator(vwap)
    join = builders.window_join(
        "quote_join",
        SlidingTimeWindows(1.0, 0.5),
        left_key_field=0,
        right_key_field=0,
        selectivity=1.5,
    )
    plan.add_operator(join)
    bargain = builders.udo(
        "bargain",
        BargainLogic,
        selectivity=0.3,
        cost_scale=0.5,
        name="bargain index",
        output_schema=Schema(
            [
                Field("symbol", DataType.INT),
                Field("index", DataType.DOUBLE),
            ]
        ),
    )
    plan.add_operator(bargain)
    plan.add_operator(builders.sink("sink"))
    plan.connect("trades", "vwap")
    plan.connect("vwap", "quote_join", port=0)
    plan.connect("quotes", "quote_join", port=1)
    plan.connect("quote_join", "bargain")
    plan.connect("bargain", "sink")
    return AppQuery(
        plan=plan,
        info=INFO,
        event_rate=event_rate,
        params={"trade_rate": trade_rate, "quote_rate": quote_rate},
    )
