"""Machine Outlier (MO) — anomaly detection on machine metrics.

From the stream-outlier framework cited in Table 2: flag machines whose
resource usage deviates from their recent history. Dataflow::

    metrics -> UDO(per-machine z-score over a sliding history) ->
    filter(|z| > threshold) -> sink

The z-score UDO keeps per-machine running moments — a moderately
data-intensive user-defined operator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema

__all__ = ["INFO", "build", "ZScoreLogic"]

INFO = AppInfo(
    abbrev="MO",
    name="Machine Outlier",
    area="Datacenter monitoring",
    description="Flags machines whose CPU/memory usage is anomalous "
    "against their recent history (per-machine z-score)",
    uses_udo=True,
    data_intensity=DataIntensity.MEDIUM,
    origin="stream-outlier [34]",
)

_SCHEMA = Schema(
    [
        Field("machine_id", DataType.INT),
        Field("cpu", DataType.DOUBLE),
        Field("memory", DataType.DOUBLE),
    ]
)

_NUM_MACHINES = 200


def _sample_metrics(rng: np.random.Generator) -> tuple:
    machine = int(rng.integers(_NUM_MACHINES))
    # A few machines run hot; occasionally any machine spikes.
    base_cpu = 0.7 if machine % 17 == 0 else 0.35
    cpu = float(np.clip(rng.normal(base_cpu, 0.1), 0.0, 1.0))
    if rng.random() < 0.01:
        cpu = float(np.clip(cpu + rng.uniform(0.3, 0.6), 0.0, 1.0))
    memory = float(np.clip(rng.normal(0.5, 0.15), 0.0, 1.0))
    return (machine, cpu, memory)


class ZScoreLogic(OperatorLogic):
    """Per-machine streaming z-score of the CPU reading.

    Maintains exponentially-decayed mean/variance per machine and emits
    ``(machine_id, cpu, zscore)``.
    """

    def __init__(self, decay: float = 0.05) -> None:
        self.decay = decay
        self._mean: dict[int, float] = {}
        self._var: dict[int, float] = {}
        self._count: dict[int, int] = {}

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        machine = tup.values[0]
        cpu = tup.values[1]
        mean = self._mean.get(machine, cpu)
        var = self._var.get(machine, 0.01)
        seen = self._count.get(machine, 0) + 1
        delta = cpu - mean
        mean += self.decay * delta
        var = (1.0 - self.decay) * (var + self.decay * delta * delta)
        self._mean[machine] = mean
        self._var[machine] = var
        self._count[machine] = seen
        z = abs(delta) / math.sqrt(max(var, 1e-6)) if seen > 5 else 0.0
        return [tup.with_values((machine, cpu, z))]


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the MO dataflow at parallelism 1."""
    plan = LogicalPlan("MO")
    plan.add_operator(
        builders.source(
            "metrics",
            make_generator(_SCHEMA, _sample_metrics),
            _SCHEMA,
            event_rate,
        )
    )
    score = builders.udo(
        "zscore",
        ZScoreLogic,
        selectivity=1.0,
        cost_scale=1.5,
        name="per-machine z-score",
        output_schema=Schema(
            [
                Field("machine", DataType.INT),
                Field("cpu", DataType.DOUBLE),
                Field("z", DataType.DOUBLE),
            ]
        ),
    )
    score.metadata["key_field"] = 0  # keyed state: partition by machine
    score.metadata["key_cardinality"] = _NUM_MACHINES
    plan.add_operator(score)
    plan.add_operator(
        builders.filter_op(
            "anomalous",
            Predicate(2, FilterFunction.GT, 2.5, selectivity_hint=0.05),
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("metrics", "zscore")
    plan.connect("zscore", "anomalous")
    plan.connect("anomalous", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
