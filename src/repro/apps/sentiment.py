"""Sentiment Analysis (SA) — lexicon-based tweet scoring.

Table 2 cites the real-time-sentiment-analytic project: score social-media
posts against a sentiment lexicon and aggregate per topic. Dataflow::

    tweets -> UDO(lexicon scan + negation handling) ->
    window avg(sentiment) per topic -> sink

The scorer touches every token of every tweet, making SA one of the paper's
*data-intensive UDO* apps that benefit from very high parallelism (O1, O5).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.costs import OperatorCost
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, SlidingTimeWindows

__all__ = ["INFO", "build", "SentimentLogic"]

INFO = AppInfo(
    abbrev="SA",
    name="Sentiment Analysis",
    area="Social media",
    description="Scores tweets against a sentiment lexicon and averages "
    "sentiment per topic over sliding windows",
    uses_udo=True,
    data_intensity=DataIntensity.HIGH,
    origin="real-time-sentiment-analytic [21]",
)

_POSITIVE = {
    "good", "great", "love", "happy", "awesome", "fast", "win", "best",
    "nice", "cool", "amazing", "super",
}
_NEGATIVE = {
    "bad", "slow", "hate", "sad", "awful", "bug", "fail", "worst",
    "broken", "angry", "crash", "lag",
}
_NEUTRAL = [
    "the", "a", "of", "is", "on", "at", "today", "stream", "game",
    "phone", "movie", "update", "release", "team", "city",
]
_TOPICS = 50

_SCHEMA = Schema(
    [Field("topic", DataType.INT), Field("text", DataType.STRING)]
)

# Sorted: set iteration order depends on PYTHONHASHSEED, and the word
# list feeds the tweet generator — unsorted, SA simulations would not
# reproduce bit-identically across processes.
_ALL_WORDS = sorted(_POSITIVE) + sorted(_NEGATIVE) + _NEUTRAL


def _sample_tweet(rng: np.random.Generator) -> tuple:
    length = int(rng.integers(6, 18))
    words = [
        _ALL_WORDS[int(rng.integers(len(_ALL_WORDS)))]
        for _ in range(length)
    ]
    if rng.random() < 0.15:
        words.insert(int(rng.integers(len(words))), "not")
    return (int(rng.integers(_TOPICS)), " ".join(words))


class SentimentLogic(OperatorLogic):
    """Lexicon scoring with single-token negation flipping.

    Emits ``(topic, score)`` where score sums +1/-1 lexicon hits, flipped
    when preceded by "not", normalised by tweet length.
    """

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        topic, text = tup.values
        tokens = text.split(" ")
        score = 0.0
        negate = False
        for token in tokens:
            if token == "not":
                negate = True
                continue
            value = 0.0
            if token in _POSITIVE:
                value = 1.0
            elif token in _NEGATIVE:
                value = -1.0
            score += -value if negate else value
            negate = False
        return [tup.with_values((topic, score / max(len(tokens), 1)))]

    def work_units(self, tup: StreamTuple) -> float:
        # Cost scales with tweet length (full lexicon scan per token).
        return max(len(tup.values[1]) / 60.0, 0.25)


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the SA dataflow at parallelism 1."""
    plan = LogicalPlan("SA")
    plan.add_operator(
        builders.source(
            "tweets",
            make_generator(_SCHEMA, _sample_tweet),
            _SCHEMA,
            event_rate,
        )
    )
    scorer = builders.udo(
        "score",
        SentimentLogic,
        selectivity=1.0,
        # Token-by-token lexicon scan: data-intensive but *stateless*, so
        # it scales to very high parallelism with little coordination
        # (the paper reports SA still improving at degree 128).
        cost=OperatorCost(
            base_cpu_s=40.0e-6 * 6.0,
            coord_kappa=0.0015,
            stateful=False,
            is_udo=True,
            cost_noise=0.25,
        ),
        name="lexicon sentiment scorer",
        output_schema=Schema(
            [
                Field("topic", DataType.INT),
                Field("score", DataType.DOUBLE),
            ]
        ),
    )
    plan.add_operator(scorer)
    topic_avg = builders.window_agg(
        "topic_sentiment",
        SlidingTimeWindows(1.0, 0.5),
        AggregateFunction.AVG,
        value_field=1,
        key_field=0,
        selectivity=0.01,
    )
    topic_avg.metadata["key_cardinality"] = _TOPICS
    plan.add_operator(topic_avg)
    plan.add_operator(builders.sink("sink"))
    plan.connect("tweets", "score")
    plan.connect("score", "topic_sentiment")
    plan.connect("topic_sentiment", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
