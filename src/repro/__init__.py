"""PDSP-Bench reproduction: benchmarking parallel & distributed stream

processing with a simulated SUT and learned cost models.

Reproduces Agnihotri et al., *PDSP-Bench: A Benchmarking System for
Parallel and Distributed Stream Processing* (TPCTC 2024; SIGMOD 2025
demo). See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart::

    from repro import PDSPBench

    bench = PDSPBench.homogeneous()          # 10 x m510, as in the paper
    record = bench.run_application("WC", parallelism=8)
    print(record.metrics["mean_median_latency_ms"])
"""

from repro.cluster import (
    Cluster,
    heterogeneous_cluster,
    homogeneous_cluster,
    mixed_cluster,
)
from repro.core import BenchmarkRunner, PDSPBench, RunnerConfig, RunRecord
from repro.ml import Dataset, MLManager, encode_query, q_error
from repro.sps import (
    AnalyticEstimator,
    LogicalPlan,
    RunMetrics,
    SimulationConfig,
    StreamEngine,
)
from repro.workload import (
    ParameterSpace,
    QueryStructure,
    WorkloadGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "PDSPBench",
    "BenchmarkRunner",
    "RunnerConfig",
    "RunRecord",
    "Cluster",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "mixed_cluster",
    "LogicalPlan",
    "StreamEngine",
    "SimulationConfig",
    "AnalyticEstimator",
    "RunMetrics",
    "WorkloadGenerator",
    "QueryStructure",
    "ParameterSpace",
    "MLManager",
    "Dataset",
    "encode_query",
    "q_error",
    "__version__",
]
