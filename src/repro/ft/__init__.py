"""Fault tolerance: aligned-barrier checkpointing and recovery.

``repro.ft`` gives the simulated engine the robustness axis real SPEs
are benchmarked on (ESPBench's result correctness under failures,
SProBench's throughput under disruption): Flink-style aligned barrier
checkpoints, an in-simulation :class:`StateStore`, source offset replay
and ``(origin, seq)`` result deduplication under a configurable
delivery guarantee. See DESIGN.md §13 for the protocol and
``SimulationConfig.checkpoint_interval`` / ``delivery`` for the knobs.
"""

from repro.ft.store import (
    DELIVERY_MODES,
    STATE_BYTES_PER_ITEM,
    CheckpointRecord,
    StateStore,
    estimate_items,
    validate_delivery,
)

__all__ = [
    "CheckpointRecord",
    "StateStore",
    "DELIVERY_MODES",
    "STATE_BYTES_PER_ITEM",
    "estimate_items",
    "validate_delivery",
]
