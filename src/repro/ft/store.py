"""The in-simulation checkpoint state store.

One :class:`StateStore` lives inside one engine run. Checkpoints are
*aligned-barrier* snapshots (DESIGN.md §13): the engine injects a
barrier at the sources, every stateful subtask snapshots its keyed
state when the barrier has arrived on all of its input channels, and
the checkpoint completes when every participant has acknowledged. The
store keeps the completed :class:`CheckpointRecord` sequence plus the
accounting (durations, sizes, skips) that surfaces in
``RunMetrics.extras["ft"]`` and the obs summary.

The store is deliberately simulation-local: snapshots are deep copies
of in-memory operator state, and "bytes" is a nominal per-item cost —
the benchmark measures protocol behaviour (alignment, recovery time,
delivery guarantees), not serialization throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CheckpointRecord",
    "StateStore",
    "DELIVERY_MODES",
    "STATE_BYTES_PER_ITEM",
    "estimate_items",
    "validate_delivery",
]

#: Accepted values of ``SimulationConfig.delivery``.
DELIVERY_MODES = ("exactly_once", "at_least_once")

#: Nominal serialized size of one state item (key + payload), used for
#: the state-size accounting. Deterministic and cheap by construction.
STATE_BYTES_PER_ITEM = 48.0


def validate_delivery(mode: str) -> str:
    """Return ``mode`` if it is a known delivery guarantee; raise else."""
    if mode not in DELIVERY_MODES:
        raise ValueError(
            f"unknown delivery mode {mode!r}; "
            f"use one of {', '.join(DELIVERY_MODES)}"
        )
    return mode


def estimate_items(snapshot) -> int:
    """Nominal item count of one subtask snapshot.

    Keyed snapshots are ``[(key, payload), ...]`` lists (one item per
    key); opaque snapshots (UDO dicts, join buffers) count their
    top-level entries; anything else counts as a single item.
    """
    if snapshot is None:
        return 0
    if isinstance(snapshot, (list, dict)):
        return len(snapshot)
    if isinstance(snapshot, tuple):
        total = 0
        for part in snapshot:
            if isinstance(part, (list, dict)):
                total += len(part)
        return max(total, 1)
    return 1


@dataclass
class CheckpointRecord:
    """One completed aligned checkpoint (the recovery restart point)."""

    ckpt_id: int
    triggered_at: float
    completed_at: float = 0.0
    #: source gid -> durable-log offset (tuples delivered downstream)
    source_offsets: dict = field(default_factory=dict)
    #: producer gid -> sink-bound emission sequence number at the barrier
    emit_seqs: dict = field(default_factory=dict)
    #: subtask gid -> deep-copied operator state (None = stateless)
    snapshots: dict = field(default_factory=dict)
    state_items: int = 0
    state_bytes: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.completed_at - self.triggered_at


class StateStore:
    """Holds the in-progress checkpoint and the completed sequence."""

    def __init__(self) -> None:
        self.completed: list[CheckpointRecord] = []
        self.skipped = 0
        self._active: CheckpointRecord | None = None
        self._next_id = 1

    @property
    def active(self) -> CheckpointRecord | None:
        return self._active

    def begin(self, now: float) -> CheckpointRecord:
        """Open a new checkpoint; refuses to overlap an active one."""
        if self._active is not None:
            raise RuntimeError("a checkpoint is already in progress")
        record = CheckpointRecord(ckpt_id=self._next_id, triggered_at=now)
        self._next_id += 1
        self._active = record
        return record

    def skip(self) -> None:
        """A trigger fired while a checkpoint was still aligning."""
        self.skipped += 1

    def add_snapshot(self, gid: int, snapshot) -> None:
        """Record subtask ``gid``'s state snapshot into the active
        checkpoint, accruing its size accounting."""
        record = self._active
        if record is None:
            raise RuntimeError("no checkpoint in progress")
        record.snapshots[gid] = snapshot
        items = estimate_items(snapshot)
        record.state_items += items
        record.state_bytes += items * STATE_BYTES_PER_ITEM

    def complete(self, now: float) -> CheckpointRecord:
        """Close the active checkpoint (all participants acknowledged)."""
        record = self._active
        if record is None:
            raise RuntimeError("no checkpoint in progress")
        record.completed_at = now
        self.completed.append(record)
        self._active = None
        return record

    def abort(self) -> None:
        """Drop the in-progress checkpoint (a failure interrupted it)."""
        self._active = None

    def latest(self) -> CheckpointRecord | None:
        """The most recent *completed* checkpoint, or None."""
        if not self.completed:
            return None
        return self.completed[-1]

    def duration_mean_s(self) -> float:
        """Mean trigger-to-completion duration of completed checkpoints."""
        if not self.completed:
            return 0.0
        total = 0.0
        for record in self.completed:
            total += record.duration_s
        return total / len(self.completed)
