"""Shard partitioning: map simulated cluster nodes onto kernel shards.

The sharding unit is the *placement node*, never the individual
subtask: every channel between subtasks on the same node has zero
simulated network delay, so splitting a node across shards would leave
the conservative controller without lookahead (see
:mod:`repro.kernel.sharded`). Cross-node channels all pay at least the
network's base latency, which becomes the epoch width.

Results are invariant under the choice of partition — any node→shard
map yields the same simulation — so the map only matters for balance:
nodes are dealt round-robin in sorted order, which spreads
round-robin-placed subtasks evenly.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError

__all__ = ["partition_nodes", "shard_of_gids"]


def partition_nodes(node_ids, shards: int) -> dict[int, int]:
    """Deal the distinct node ids round-robin onto ``shards`` shards."""
    distinct = sorted(set(node_ids))
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shards > len(distinct):
        raise ConfigurationError(
            f"cannot split {len(distinct)} placement node(s) into "
            f"{shards} shards; use shards <= nodes hosting subtasks"
        )
    return {node: i % shards for i, node in enumerate(distinct)}


def shard_of_gids(node_of_gid, shard_of_node: dict[int, int]) -> list[int]:
    """Per-gid shard ids from a per-gid node list and the node map."""
    return [shard_of_node[node] for node in node_of_gid]
