"""Pickle-free wire format for cross-shard tuple batches.

One epoch's cross-shard messages are encoded as typed *columns* in the
:class:`~repro.sps.columnar.TupleBatch` style: messages are grouped by
their value/key type signature, each group ships fixed ``float64``/
``int64`` arrays for the envelope (delivery time, origin gid, origin
sequence, destination gid, port, tuple timestamps, payload size) plus
one typed column per value position. Column codes:

- ``f`` float64, ``q`` int64, ``b`` bool (uint8), ``n`` all-None
- ``s`` UTF-8 strings (offset array + joined blob)
- ``o`` pickled object list — the documented *fallback* for exotic
  payloads (big ints, user objects); the common numeric/string streams
  of every built-in app never hit it.

Losslessness is what the sharded bit-identity guarantee rests on:
``decode_batch(encode_batch(msgs))`` reproduces every envelope float
bit-for-bit and every value exactly (``tests/test_kernel.py`` pins
this), which is why the in-process and forked transports agree.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from repro.sps.tuples import StreamTuple

__all__ = ["encode_batch", "decode_batch"]

_MAGIC = b"SW01"
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def _code(value) -> str:
    if value is None:
        return "n"
    cls = value.__class__
    if cls is float:
        return "f"
    if cls is bool:
        return "b"
    if cls is int:
        return "q" if _I64_MIN <= value <= _I64_MAX else "o"
    if cls is str:
        return "s"
    return "o"


def _encode_column(code: str, items: list, out: list) -> None:
    if code == "f":
        out.append(np.asarray(items, dtype=np.float64).tobytes())
    elif code == "q":
        out.append(np.asarray(items, dtype=np.int64).tobytes())
    elif code == "b":
        out.append(np.asarray(items, dtype=np.uint8).tobytes())
    elif code == "s":
        blob = "\x00".join(items).encode("utf-8")
        lengths = np.asarray(
            [len(s.encode("utf-8")) for s in items], dtype=np.int64
        )
        out.append(lengths.tobytes())
        out.append(struct.pack("<I", len(blob)))
        out.append(blob)
    elif code == "n":
        pass
    else:  # 'o': documented pickle fallback for exotic payloads
        blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(struct.pack("<I", len(blob)))
        out.append(blob)


def _decode_column(code: str, n: int, buf: memoryview, pos: int):
    if code == "f":
        end = pos + 8 * n
        return np.frombuffer(buf[pos:end], dtype=np.float64).tolist(), end
    if code == "q":
        end = pos + 8 * n
        return np.frombuffer(buf[pos:end], dtype=np.int64).tolist(), end
    if code == "b":
        end = pos + n
        return [bool(v) for v in buf[pos:end]], end
    if code == "s":
        end = pos + 8 * n
        lengths = np.frombuffer(buf[pos:end], dtype=np.int64)
        (blob_len,) = struct.unpack_from("<I", buf, end)
        blob = bytes(buf[end + 4 : end + 4 + blob_len]).decode("utf-8")
        items = blob.split("\x00") if n else []
        # A value containing the separator would mis-split; lengths
        # disagreeing with the split detects it and falls back to a
        # length-driven scan.
        if len(items) != n or any(
            len(s.encode("utf-8")) != ln for s, ln in zip(items, lengths)
        ):
            items = []
            cursor = 0
            raw = blob.encode("utf-8")
            for ln in lengths:
                items.append(raw[cursor : cursor + ln].decode("utf-8"))
                cursor += ln + 1
        return items, end + 4 + blob_len
    if code == "n":
        return [None] * n, pos
    (blob_len,) = struct.unpack_from("<I", buf, pos)
    items = pickle.loads(bytes(buf[pos + 4 : pos + 4 + blob_len]))
    return items, pos + 4 + blob_len


def encode_batch(messages) -> bytes:
    """Encode ``(at, origin, oseq, dst, port, StreamTuple)`` messages."""
    groups: dict[tuple, list[int]] = {}
    for i, msg in enumerate(messages):
        tup = msg[5]
        sig = tuple(_code(v) for v in tup.values) + (_code(tup.key),)
        groups.setdefault(sig, []).append(i)
    out: list[bytes] = [_MAGIC, struct.pack("<I", len(groups))]
    for sig, indices in groups.items():
        n = len(indices)
        arity = len(sig) - 1
        out.append(struct.pack("<IH", n, arity))
        out.append("".join(sig).encode("ascii"))
        picked = [messages[i] for i in indices]
        out.append(np.asarray(indices, dtype=np.int64).tobytes())
        out.append(
            np.asarray([m[0] for m in picked], dtype=np.float64).tobytes()
        )
        envelope = np.asarray(
            [(m[1], m[2], m[3], m[4]) for m in picked], dtype=np.int64
        )
        out.append(envelope.tobytes())
        tuples = [m[5] for m in picked]
        times = np.asarray(
            [(t.event_time, t.origin_time, t.size_bytes) for t in tuples],
            dtype=np.float64,
        )
        out.append(times.tobytes())
        for j in range(arity):
            _encode_column(sig[j], [t.values[j] for t in tuples], out)
        _encode_column(sig[arity], [t.key for t in tuples], out)
    return b"".join(out)


def decode_batch(data: bytes) -> list:
    """Inverse of :func:`encode_batch`, restoring the original order."""
    buf = memoryview(data)
    if bytes(buf[:4]) != _MAGIC:
        raise ValueError("bad shard wire magic")
    (n_groups,) = struct.unpack_from("<I", buf, 4)
    pos = 8
    slots: dict[int, tuple] = {}
    for _ in range(n_groups):
        n, arity = struct.unpack_from("<IH", buf, pos)
        pos += 6
        sig = bytes(buf[pos : pos + arity + 1]).decode("ascii")
        pos += arity + 1
        indices = np.frombuffer(buf[pos : pos + 8 * n], dtype=np.int64)
        pos += 8 * n
        ats = np.frombuffer(buf[pos : pos + 8 * n], dtype=np.float64)
        pos += 8 * n
        envelope = np.frombuffer(
            buf[pos : pos + 32 * n], dtype=np.int64
        ).reshape(n, 4)
        pos += 32 * n
        times = np.frombuffer(
            buf[pos : pos + 24 * n], dtype=np.float64
        ).reshape(n, 3)
        pos += 24 * n
        columns = []
        for code in sig:
            column, pos = _decode_column(code, n, buf, pos)
            columns.append(column)
        keys = columns[-1]
        for row in range(n):
            tup = StreamTuple.__new__(StreamTuple)
            tup.values = tuple(columns[j][row] for j in range(arity))
            tup.key = keys[row]
            tup.event_time = float(times[row, 0])
            tup.origin_time = float(times[row, 1])
            tup.size_bytes = float(times[row, 2])
            tup.prov = None
            slots[int(indices[row])] = (
                float(ats[row]),
                int(envelope[row, 0]),
                int(envelope[row, 1]),
                int(envelope[row, 2]),
                int(envelope[row, 3]),
                tup,
            )
    return [slots[i] for i in range(len(slots))]
