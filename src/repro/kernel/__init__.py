"""Domain-agnostic discrete-event simulation kernel.

The kernel owns exactly four things: the event heap, the simulated
clock, the monotone tie-break sequence and the work counter. It knows
nothing about streams, operators or tuples — the stream runtime
(:mod:`repro.sps.engine`) registers one handler per event kind and
drives the loop, and the sharded executor
(:mod:`repro.sps.shard_exec`) runs one kernel per shard under the
conservative-time controller in :mod:`repro.kernel.sharded`.
"""

from repro.kernel.core import BudgetExceededError, Kernel
from repro.kernel.partition import partition_nodes, shard_of_gids
from repro.kernel.sharded import ShardController

__all__ = [
    "BudgetExceededError",
    "Kernel",
    "ShardController",
    "partition_nodes",
    "shard_of_gids",
]
