"""Conservative parallel DES: epoch controller over K shard kernels.

**Protocol.** The simulated cluster is partitioned by placement node
(:mod:`repro.kernel.partition`); every cross-shard channel pays at least
the network's base latency ``L``, which becomes the *lookahead*. The
controller advances all shards through a shared sequence of epoch
boundaries::

    B_{n+1} = max(B_n, T_e) + L

where ``T_e`` is the earliest pending event time anywhere (worker heaps
plus in-flight cross-shard packets). Each epoch, every shard drains its
local heap strictly below the boundary, collecting cross-shard sends
into per-destination *packets* ``(dst_shard, min_time, count,
payload)``; the controller forwards each packet to its destination's
next-epoch inbox without ever opening the payload — an opaque blob on
the forked transport, a raw message list in-process — so all
serialization work stays inside the (parallel) workers.

**Safety.** By induction ``T_e(n) >= B_{n-1}``: epoch ``n-1`` drained
every local event below ``B_{n-1}``, and packets emitted during it have
arrival times ``>= T_e(n-1) + L = B_{n-1}``. Any send during epoch ``n``
then arrives at ``t + L >= T_e(n) + L >= B_n`` — never inside an epoch
already being drained. No shard can receive a message in its past, so no
rollback is ever needed.

**Invariance.** The boundary sequence depends only on event times and
the lookahead — both invariant under the node→shard map — and equal-time
events order by ``(origin gid, origin seq)`` tie-breaks, which depend
only on the producer. Hence ``shards=K`` produces bit-identical results
for every K (including ``K=1``), which the runner's DET609 cross-check
and the property suite exploit.

**Termination.** Quiescence (zero data-plane work everywhere, nothing in
flight) triggers a flush round at the current boundary: shards force
remaining window panes closed in topological order, exactly like the
serial engine's idle flush. Flush emissions are new work, so epochs
resume; when a round emits nothing anywhere (or the round cap is hit)
the run is finished at that boundary.

Worker handles are duck-typed so the in-process and forked transports
(:mod:`repro.sps.shard_exec`) share this controller: each handle
implements ``begin_start() / begin_epoch(boundary, packets, budget) /
begin_flush(boundary)`` to issue a command and ``collect()`` to block on
its reply — issuing to all handles before collecting any is what lets
forked shards run concurrently.
"""

from __future__ import annotations

import math

from repro.kernel.core import BudgetExceededError

__all__ = ["ShardController"]


class ShardController:
    """Drive K duck-typed shard handles to a deterministic finish.

    Replies carry outboxes as packets ``(dst_shard, min_time, count,
    payload)``; the payload is opaque to the controller — only the
    destination, the earliest contained arrival time and the message
    count feed the boundary and quiescence logic.
    """

    def __init__(
        self,
        handles,
        *,
        lookahead: float,
        max_events: int,
        max_flush_rounds: int,
    ) -> None:
        if lookahead <= 0.0:
            raise ValueError("conservative sharding requires lookahead > 0")
        self.handles = list(handles)
        self.lookahead = lookahead
        self.max_events = max_events
        self.max_flush_rounds = max_flush_rounds
        #: filled in by :meth:`run` for the host's metrics/reporting
        self.events_processed = 0
        self.epochs = 0
        self.flush_rounds = 0

    def run(self) -> float:
        """Run all shards to completion; return the final simulated time."""
        handles = self.handles
        shards = len(handles)
        lookahead = self.lookahead
        max_events = self.max_events
        pending: list[list] = [[] for _ in range(shards)]

        for handle in handles:
            handle.begin_start()
        events = [0] * shards
        work = [0] * shards
        nxt = [math.inf] * shards
        for i, handle in enumerate(handles):
            _, work[i], nxt[i] = handle.collect()

        boundary = 0.0
        flush_rounds = 0
        epochs = 0
        while True:
            in_flight = sum(
                packet[2] for inbox in pending for packet in inbox
            )
            if sum(work) + in_flight == 0:
                # Globally quiescent: no data-plane events anywhere.
                if flush_rounds >= self.max_flush_rounds:
                    break
                flush_rounds += 1
                for handle in handles:
                    handle.begin_flush(boundary)
                emitted = False
                for i, handle in enumerate(handles):
                    emit, events[i], work[i], nxt[i], outbox = (
                        handle.collect()
                    )
                    emitted = emitted or emit
                    for packet in outbox:
                        pending[packet[0]].append(packet)
                if not emitted:
                    break
                continue
            earliest = min(nxt)
            for inbox in pending:
                for packet in inbox:
                    if packet[1] < earliest:
                        earliest = packet[1]
            if earliest == math.inf:  # defensive; work>0 implies finite
                break
            boundary = max(boundary, earliest) + lookahead
            epochs += 1
            total = sum(events)
            for i, handle in enumerate(handles):
                # Per-shard budget: the global remainder as of the last
                # sync point; the controller re-checks the true sum
                # after collecting.
                handle.begin_epoch(
                    boundary, pending[i], max_events - (total - events[i])
                )
                pending[i] = []
            for i, handle in enumerate(handles):
                events[i], work[i], nxt[i], outbox = handle.collect()
                for packet in outbox:
                    pending[packet[0]].append(packet)
            if sum(events) > max_events:
                raise BudgetExceededError(max_events)

        self.events_processed = sum(events)
        self.epochs = epochs
        self.flush_rounds = flush_rounds
        return boundary
