"""The discrete-event kernel: heap, clock, tie-breaks, work accounting.

One :class:`Kernel` executes one totally ordered event sequence. Events
are 6-tuples ``(time, tiebreak, kind, gid, payload, port)``; the kernel
pops them in ``(time, tiebreak)`` order and dispatches on ``kind``
through a caller-supplied handler table. The tie-break is an opaque
comparable: :meth:`push` assigns a monotone integer (the classic serial
sequence number), while sharded execution pushes ``(origin, oseq)``
pairs via :meth:`push_tb` so the order of equal-time events is invariant
under re-partitioning (see :mod:`repro.kernel.sharded`).

**Work accounting.** ``work_mask[kind]`` marks the *data-plane* kinds:
pushing one increments :attr:`work`, popping one decrements it, and when
the counter hits zero the host's ``on_idle`` callback decides whether to
continue (it typically injects flush work) or stop. Control-plane kinds
(timers, reconfiguration ticks) never keep a simulation alive.

The kernel draws no randomness of its own; hosts own their RNG streams.
Every floating-point expression and dispatch decision here keeps the
exact operand order of the pre-extraction engine loop, so committed
golden results are bit-identical (``tests/test_golden_determinism.py``).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

__all__ = ["BudgetExceededError", "Kernel"]


class BudgetExceededError(RuntimeError):
    """Raised when a run pops more events than ``max_events`` allows.

    Domain-agnostic on purpose: hosts catch it and re-raise their own
    error type with context (the engine raises ``SimulationError``).
    """

    def __init__(self, max_events: int) -> None:
        super().__init__(f"event budget exceeded ({max_events})")
        self.max_events = max_events


class Kernel:
    """One event heap plus the simulated clock that drains it."""

    __slots__ = (
        "heap",
        "now",
        "seq",
        "work",
        "events_processed",
        "work_mask",
        "sampler",
        "sample_next",
    )

    def __init__(self, work_mask: tuple[bool, ...]) -> None:
        #: which event kinds carry work accounting, indexed by kind
        self.work_mask = work_mask
        self.heap: list = []
        self.now = 0.0
        self.seq = 0
        self.work = 0
        self.events_processed = 0
        #: lazy observer sampling: when an event's time passes
        #: ``sample_next``, ``sampler(time)`` runs and returns the next
        #: deadline. Sampling piggy-backs on events already being
        #: processed, so the heap and tie-break sequence are untouched.
        self.sampler = None
        self.sample_next = math.inf

    def reset(self) -> None:
        """Restore pristine pre-run state (heap empty, clock at zero)."""
        self.heap = []
        self.now = 0.0
        self.seq = 0
        self.work = 0
        self.events_processed = 0
        self.sampler = None
        self.sample_next = math.inf

    # -------------------------------------------------------------- schedule

    def push(self, time: float, kind: int, gid: int, payload, port: int):
        """Schedule an event with the next serial tie-break number."""
        self.seq += 1
        if self.work_mask[kind]:
            self.work += 1
        heappush(self.heap, (time, self.seq, kind, gid, payload, port))

    def push_tb(self, time: float, tb, kind: int, gid: int, payload, port):
        """Schedule an event under a caller-supplied tie-break.

        Sharded execution uses ``(origin_gid, origin_seq)`` pairs: the
        tie-break then depends only on the event's producer, never on
        global pop order, so equal-time ordering is identical for every
        shard count.
        """
        if self.work_mask[kind]:
            self.work += 1
        heappush(self.heap, (time, tb, kind, gid, payload, port))

    def next_event_time(self) -> float:
        """Time of the earliest pending event (``inf`` when empty)."""
        return self.heap[0][0] if self.heap else math.inf

    # ------------------------------------------------------------------ run

    def run(
        self,
        handlers,
        *,
        max_events: int,
        until: float | None = None,
        on_idle=None,
    ) -> None:
        """Drain the heap, dispatching each event through ``handlers``.

        ``handlers[kind](gid, payload, port)`` runs for every popped
        event. ``until`` stops *before* popping the first event at
        ``time >= until`` (conservative epoch boundary; the event stays
        queued). ``on_idle`` runs whenever the work counter reaches
        zero: return True to keep draining (new work was injected),
        False to stop. Without ``on_idle`` the loop ignores idleness —
        a sharded worker's local quiescence says nothing global.

        Raises :class:`BudgetExceededError` once more than
        ``max_events`` events have been popped over the kernel's
        lifetime (the counter persists across epoch calls).
        """
        heap = self.heap
        work_mask = self.work_mask
        sampler = self.sampler
        events = self.events_processed
        try:
            while heap:
                if events > max_events:
                    raise BudgetExceededError(max_events)
                if until is not None and heap[0][0] >= until:
                    break
                time, _, kind, gid, payload, port = heappop(heap)
                events += 1
                self.now = time
                if time >= self.sample_next:
                    self.sample_next = sampler(time)
                if work_mask[kind]:
                    self.work -= 1
                    handlers[kind](gid, payload, port)
                    if (
                        self.work == 0
                        and on_idle is not None
                        and not on_idle()
                    ):
                        break
                else:
                    handlers[kind](gid, payload, port)
        finally:
            self.events_processed = events
