"""Selectivity estimation and selectivity-aware literal generation.

The paper (Section 3.1): random filter literals "may result that data never
passes the generated filter. To avoid this, we use selectivity estimation
methods to estimate selectivity of given filter operators such that queries
with only valid literals are generated". These functions implement that:
:func:`estimate_selectivity` computes the pass probability of a predicate
under a field's value distribution, and :func:`draw_predicate` inverts the
distribution to hit a target selectivity inside a configured band.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType
from repro.workload.distributions import StringVocabulary, ValueDistribution

__all__ = ["estimate_selectivity", "draw_predicate"]


def estimate_selectivity(
    function: FilterFunction, literal, dist: ValueDistribution
) -> float:
    """Estimated P(predicate passes) for values drawn from ``dist``."""
    if function is FilterFunction.LT:
        return dist.cdf(literal) - dist.point_mass(literal)
    if function is FilterFunction.LE:
        return dist.cdf(literal)
    if function is FilterFunction.GT:
        return 1.0 - dist.cdf(literal)
    if function is FilterFunction.GE:
        return 1.0 - dist.cdf(literal) + dist.point_mass(literal)
    if function is FilterFunction.EQ:
        return dist.point_mass(literal)
    if function is FilterFunction.NE:
        return 1.0 - dist.point_mass(literal)
    if not isinstance(dist, StringVocabulary):
        raise ConfigurationError(
            f"{function.value} requires a string vocabulary distribution"
        )
    if function is FilterFunction.STARTS_WITH:
        return dist.prefix_mass(literal)
    if function is FilterFunction.ENDS_WITH:
        return dist.suffix_mass(literal)
    return dist.substring_mass(literal)  # CONTAINS


def _candidate_functions(dtype: DataType) -> list[FilterFunction]:
    return [f for f in FilterFunction if f.applies_to(dtype)]


def _draw_string_literal(
    function: FilterFunction,
    dist: StringVocabulary,
    rng: np.random.Generator,
) -> str:
    word = dist.words[int(rng.integers(len(dist.words)))]
    if function is FilterFunction.EQ or function is FilterFunction.NE:
        return word
    if function is FilterFunction.STARTS_WITH:
        return word[: int(rng.integers(1, max(len(word), 2)))]
    if function is FilterFunction.ENDS_WITH:
        return word[-int(rng.integers(1, max(len(word), 2))) :]
    # CONTAINS: a random slice
    if len(word) <= 2:
        return word
    start = int(rng.integers(0, len(word) - 1))
    stop = int(rng.integers(start + 1, len(word) + 1))
    return word[start:stop]


def draw_predicate(
    dist: ValueDistribution,
    field_index: int,
    rng: np.random.Generator,
    band: tuple[float, float] = (0.15, 0.85),
    functions: list[FilterFunction] | None = None,
    max_attempts: int = 50,
) -> Predicate:
    """Draw a predicate whose estimated selectivity lies inside ``band``.

    Range functions (<, >, <=, >=) invert the distribution directly via its
    quantile function; equality and string functions are drawn and checked,
    retrying up to ``max_attempts`` before falling back to a range function
    (which always succeeds on numeric fields) or the widest available string
    literal. The achieved estimate is recorded as the predicate's
    ``selectivity_hint``.
    """
    lo, hi = band
    if not 0.0 < lo < hi < 1.0:
        raise ConfigurationError("selectivity band must satisfy 0 < lo < hi < 1")
    candidates = functions or _candidate_functions(dist.dtype)
    candidates = [f for f in candidates if f.applies_to(dist.dtype)]
    if not candidates:
        raise ConfigurationError(
            f"no filter functions apply to {dist.dtype.value} fields"
        )
    best: Predicate | None = None
    best_distance = float("inf")
    for _ in range(max_attempts):
        function = candidates[int(rng.integers(len(candidates)))]
        target = float(rng.uniform(lo, hi))
        if function in (FilterFunction.LT, FilterFunction.LE):
            literal = dist.quantile(target)
        elif function in (FilterFunction.GT, FilterFunction.GE):
            literal = dist.quantile(1.0 - target)
        elif dist.dtype is DataType.STRING:
            literal = _draw_string_literal(
                function, dist, rng  # type: ignore[arg-type]
            )
        else:
            literal = dist.sample(rng)
        estimate = estimate_selectivity(function, literal, dist)
        predicate = Predicate(
            field_index=field_index,
            function=function,
            literal=literal,
            selectivity_hint=min(max(estimate, 0.0), 1.0),
        )
        if lo <= estimate <= hi:
            return predicate
        distance = min(abs(estimate - lo), abs(estimate - hi))
        if 0.0 < estimate < 1.0 and distance < best_distance:
            best = predicate
            best_distance = distance
    if dist.dtype is not DataType.STRING:
        target = float(rng.uniform(lo, hi))
        literal = dist.quantile(target)
        estimate = estimate_selectivity(FilterFunction.LE, literal, dist)
        return Predicate(
            field_index=field_index,
            function=FilterFunction.LE,
            literal=literal,
            selectivity_hint=min(max(estimate, 1e-6), 1.0),
        )
    if best is not None:
        return best
    raise ConfigurationError(
        "could not generate a valid predicate: the vocabulary admits no "
        f"literal with selectivity in ({lo}, {hi})"
    )
