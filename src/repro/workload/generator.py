"""The workload generator facade.

Combines the pieces of this package: stream specs, synthetic query
structures and parallelism enumeration, producing ready-to-run
:class:`~repro.workload.querygen.GeneratedQuery` batches — the "large
corpora of streaming datasets across query, data and resource diversity"
the paper generates for benchmarking and ML training.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.analysis.analyzer import analyze_plan
from repro.cluster.cluster import Cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.workload.enumeration import (
    EnumerationStrategy,
    RuleBasedEnumeration,
)
from repro.workload.parameter_space import ParameterSpace
from repro.workload.querygen import (
    GeneratedQuery,
    QueryStructure,
    build_structure,
)

__all__ = ["WorkloadGenerator", "scale_plan_costs"]


def scale_plan_costs(plan, scale: float) -> None:
    """Multiply every operator's per-tuple CPU cost by ``scale`` in place.

    Used for time dilation (see :meth:`WorkloadGenerator.generate`) and by
    the benchmark runner when dilating application plans.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    for op in plan.operators.values():
        plan.operator(op.op_id).cost = op.cost.scaled(scale)


class WorkloadGenerator:
    """Generates batches of parallel query plans with data streams."""

    #: Retries per requested query before giving up when the static
    #: analyzer keeps rejecting what we generate.
    MAX_REJECTIONS_PER_QUERY = 25

    def __init__(
        self,
        space: ParameterSpace | None = None,
        seed: int = 0,
    ) -> None:
        self.space = space or ParameterSpace()
        self._rngs = RngFactory(seed)
        self._generated = 0
        #: Cumulative count of analyzer-rejected candidate plans, by rule
        #: code (e.g. ``{"RES401": 3}``). A healthy generator keeps this
        #: empty; non-zero counts point at a generator/analyzer mismatch.
        self.rejection_counts: Counter[str] = Counter()

    @property
    def rejected_total(self) -> int:
        """Total candidate plans the pre-flight analyzer rejected."""
        return sum(self.rejection_counts.values())

    def generate(
        self,
        cluster: Cluster,
        count: int,
        structures: Sequence[QueryStructure] | None = None,
        strategy: EnumerationStrategy | None = None,
        event_rate: float | None = None,
        cost_scale: float = 1.0,
    ) -> list[GeneratedQuery]:
        """Generate ``count`` PQPs cycling through ``structures``.

        Each query gets fresh random stream specs, selectivity-checked
        predicates and a parallelism assignment from ``strategy``
        (rule-based by default, the paper's recommended setting for
        meaningful plans).

        ``cost_scale`` supports *time dilation* for discrete-event runs:
        generating with ``event_rate = R / S`` and ``cost_scale = S``
        keeps every operator's utilisation identical to a run at rate R
        while simulating S times fewer tuples — window durations stay at
        their Table 3 values. Analytic evaluation needs no dilation.
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        if cost_scale <= 0:
            raise ConfigurationError("cost_scale must be positive")
        chosen = list(structures or QueryStructure)
        if not chosen:
            raise ConfigurationError("structures must be non-empty")
        strategy = strategy or RuleBasedEnumeration(self.space)
        queries: list[GeneratedQuery] = []
        for i in range(count):
            structure = chosen[i % len(chosen)]
            queries.append(
                self._generate_checked(
                    structure, cluster, strategy, event_rate, cost_scale
                )
            )
        return queries

    def _generate_checked(
        self,
        structure: QueryStructure,
        cluster: Cluster,
        strategy: EnumerationStrategy,
        event_rate: float | None,
        cost_scale: float,
    ) -> GeneratedQuery:
        """Build one candidate PQP, retrying past analyzer rejections.

        Every candidate runs through the static pre-flight analyzer;
        rejected plans are counted by rule code in
        :attr:`rejection_counts` and regenerated with a fresh random
        draw, so a batch never silently contains a malformed plan.
        """
        last_codes: set[str] = set()
        for _ in range(self.MAX_REJECTIONS_PER_QUERY):
            rng = self._rngs.fresh("workload", str(self._generated))
            self._generated += 1
            query = build_structure(structure, rng, self.space, event_rate)
            if cost_scale != 1.0:
                scale_plan_costs(query.plan, cost_scale)
                query.params["cost_scale"] = cost_scale
            assignment = next(
                strategy.assignments(query.plan, cluster, rng)
            )
            query.plan.set_parallelism(assignment)
            query.params["strategy"] = strategy.name
            query.params["degrees"] = dict(assignment)
            query.plan.validate()
            report = analyze_plan(query.plan, cluster=cluster)
            if not report.has_errors:
                return query
            last_codes = {d.code for d in report.errors()}
            self.rejection_counts.update(last_codes)
        raise ConfigurationError(
            f"workload generator produced "
            f"{self.MAX_REJECTIONS_PER_QUERY} consecutive "
            f"{structure.value!r} plans the static analyzer rejected "
            f"(codes: {sorted(last_codes)}); the parameter space and "
            "cluster are incompatible"
        )

    def generate_one(
        self,
        cluster: Cluster,
        structure: QueryStructure,
        strategy: EnumerationStrategy | None = None,
        event_rate: float | None = None,
    ) -> GeneratedQuery:
        """Generate a single PQP of a given structure."""
        return self.generate(
            cluster,
            count=1,
            structures=[structure],
            strategy=strategy,
            event_rate=event_rate,
        )[0]
