"""Synthetic data stream generation.

A :class:`StreamSpec` fixes a schema (tuple width + per-field types, per
Table 3's domain randomization), a value distribution per field, an event
rate and an arrival process. It compiles to the tuple-generator callable
that :func:`repro.sps.builders.source` wraps — so the same spec drives both
the simulated benchmark runs and the ML feature encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.workload.distributions import (
    ValueDistribution,
    default_distribution,
)
from repro.workload.parameter_space import ParameterSpace

__all__ = ["FieldSpec", "StreamSpec", "random_stream_spec"]


@dataclass(frozen=True)
class FieldSpec:
    """One field: a name plus the distribution its values are drawn from."""

    name: str
    distribution: ValueDistribution

    @property
    def dtype(self) -> DataType:
        """The field's data type, inherited from its distribution."""
        return self.distribution.dtype

    def to_field(self) -> Field:
        """The schema field this spec describes."""
        return Field(self.name, self.dtype)


@dataclass(frozen=True)
class StreamSpec:
    """A complete synthetic data stream description."""

    name: str
    fields: tuple[FieldSpec, ...]
    event_rate: float
    arrival: str = "poisson"

    def __post_init__(self) -> None:
        if not self.fields:
            raise ConfigurationError("stream needs at least one field")
        if self.event_rate <= 0:
            raise ConfigurationError("event rate must be positive")
        if self.arrival not in ("poisson", "constant", "bursty"):
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}"
            )

    def schema(self) -> Schema:
        """The stream's tuple schema."""
        return Schema([fs.to_field() for fs in self.fields])

    @property
    def tuple_width(self) -> int:
        """Number of data items per tuple."""
        return len(self.fields)

    def generator(self):
        """Compile to a ``(rng, now) -> StreamTuple`` callable."""
        distributions = [fs.distribution for fs in self.fields]
        size = float(self.schema().tuple_size_bytes())

        def generate(rng: np.random.Generator, now: float) -> StreamTuple:
            values = tuple(dist.sample(rng) for dist in distributions)
            return StreamTuple(values=values, event_time=now, size_bytes=size)

        return generate

    def field_index_of_type(
        self, dtype: DataType, rng: np.random.Generator
    ) -> int | None:
        """A random field index with the given type, or None."""
        indices = [
            i for i, fs in enumerate(self.fields) if fs.dtype is dtype
        ]
        if not indices:
            return None
        return int(indices[int(rng.integers(len(indices)))])

    def numeric_field_indices(self) -> list[int]:
        """Indices of all numeric (int/double) fields."""
        return [
            i
            for i, fs in enumerate(self.fields)
            if fs.dtype is not DataType.STRING
        ]

    def describe(self) -> str:
        """e.g. ``stream0(w=5, rate=100000/s)``."""
        return (
            f"{self.name}(w={self.tuple_width}, "
            f"rate={self.event_rate:g}/s, {self.arrival})"
        )


def random_stream_spec(
    name: str,
    rng: np.random.Generator,
    space: ParameterSpace | None = None,
    event_rate: float | None = None,
    ensure_numeric: bool = True,
    ensure_int_key: bool = True,
    key_cardinality: int | None = None,
) -> StreamSpec:
    """Domain-randomized stream: random width, types and distributions.

    ``ensure_numeric`` forces at least one numeric field (so aggregations
    have something to aggregate); ``ensure_int_key`` forces field 0 to be a
    bounded integer key (so joins and keyed windows have sane cardinality),
    mirroring how the paper's generated queries always have valid keys.
    """
    space = space or ParameterSpace()
    width = space.sample_tuple_width(rng)
    fields: list[FieldSpec] = []
    for i in range(width):
        dtype = space.sample_data_type(rng)
        fields.append(
            FieldSpec(f"f{i}", default_distribution(dtype, rng))
        )
    if ensure_int_key:
        from repro.workload.distributions import UniformInt

        cardinality = key_cardinality or space.key_cardinality
        fields[0] = FieldSpec("f0", UniformInt(0, cardinality - 1))
    if ensure_numeric and not any(
        fs.dtype is not DataType.STRING for fs in fields[1:]
    ):
        from repro.workload.distributions import UniformDouble

        if width == 1:
            fields.append(FieldSpec("f1", UniformDouble(0.0, 1.0)))
        else:
            fields[-1] = FieldSpec(
                fields[-1].name, UniformDouble(0.0, 1.0)
            )
    rate = (
        float(event_rate)
        if event_rate is not None
        else space.sample_event_rate(rng)
    )
    return StreamSpec(name=name, fields=tuple(fields), event_rate=rate)
