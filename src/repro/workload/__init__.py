"""Workload generator: the core component of PDSP-Bench (paper Section 3).

Generates *data streams* (synthetic tuple distributions and arrival
processes) and *parallel query plans* (synthetic structures from single
filters to 5-way joins), enumerating over the parameter ranges of Table 3,
with selectivity-aware filter literal generation and six parallelism
enumeration strategies.
"""

from repro.workload.datagen import FieldSpec, StreamSpec, random_stream_spec
from repro.workload.distributions import (
    GaussianDouble,
    StringVocabulary,
    UniformDouble,
    UniformInt,
    ValueDistribution,
    ZipfInt,
)
from repro.workload.enumeration import (
    EnumerationStrategy,
    ExhaustiveEnumeration,
    IncreasingEnumeration,
    MinAvgMaxEnumeration,
    ParameterBasedEnumeration,
    RandomEnumeration,
    RuleBasedEnumeration,
    strategy_by_name,
)
from repro.workload.generator import GeneratedQuery, WorkloadGenerator
from repro.workload.parameter_space import (
    PARALLELISM_CATEGORIES,
    ParameterSpace,
)
from repro.workload.querygen import QueryStructure, build_structure
from repro.workload.selectivity import (
    draw_predicate,
    estimate_selectivity,
)

__all__ = [
    "ValueDistribution",
    "UniformInt",
    "UniformDouble",
    "GaussianDouble",
    "ZipfInt",
    "StringVocabulary",
    "FieldSpec",
    "StreamSpec",
    "random_stream_spec",
    "estimate_selectivity",
    "draw_predicate",
    "QueryStructure",
    "build_structure",
    "ParameterSpace",
    "PARALLELISM_CATEGORIES",
    "EnumerationStrategy",
    "RandomEnumeration",
    "RuleBasedEnumeration",
    "ExhaustiveEnumeration",
    "MinAvgMaxEnumeration",
    "IncreasingEnumeration",
    "ParameterBasedEnumeration",
    "strategy_by_name",
    "WorkloadGenerator",
    "GeneratedQuery",
]
