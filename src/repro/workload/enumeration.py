"""Parallelism enumeration strategies (paper Section 3.1).

Random parallelism degrees produce noisy or wasteful PQPs (the paper's
example: one filter instance feeding many join instances), so PDSP-Bench
offers six strategies; the choice matters both for benchmarking coverage and
for ML training efficiency (Exp 3(2) shows rule-based enumeration trains a
GNN with ~3x less time than random).

- **Random** — degrees uniform over the allowed set, up to the cores
  available;
- **Rule-based** — the Kalavri et al. "three steps" heuristic: instances
  proportional to each operator's input rate x service time, respecting
  upstream selectivities and core counts;
- **Exhaustive** — every combination of candidate degrees;
- **MinAvgMax** — cycles minimum, average, maximum uniform degrees;
- **Increasing** — steps the uniform degree up through the allowed list;
- **Parameter-based** — exactly the degrees the user asked for.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator

import numpy as np

from repro.cluster.cluster import Cluster
from repro.common.errors import ConfigurationError
from repro.sps.logical import LogicalPlan, OperatorKind
from repro.workload.parameter_space import ParameterSpace

__all__ = [
    "EnumerationStrategy",
    "RandomEnumeration",
    "RuleBasedEnumeration",
    "ExhaustiveEnumeration",
    "MinAvgMaxEnumeration",
    "IncreasingEnumeration",
    "ParameterBasedEnumeration",
    "strategy_by_name",
]


class EnumerationStrategy:
    """Base class: yields per-operator parallelism assignments."""

    name = "abstract"

    def __init__(self, space: ParameterSpace | None = None) -> None:
        self.space = space or ParameterSpace()

    def assignments(
        self,
        plan: LogicalPlan,
        cluster: Cluster,
        rng: np.random.Generator,
    ) -> Iterator[dict[str, int]]:
        """Yield assignments ``{op_id: degree}``; sinks stay at 1."""
        raise NotImplementedError

    def max_degree(self, cluster: Cluster) -> int:
        """Upper bound on degrees: cores available, capped at the space."""
        return min(max(self.space.parallelism_degrees), cluster.total_cores)

    def _scalable_ops(self, plan: LogicalPlan) -> list[str]:
        return [
            op.op_id
            for op in plan.operators_in_order()
            if op.kind is not OperatorKind.SINK
        ]

    def _allowed_degrees(self, cluster: Cluster) -> list[int]:
        cap = self.max_degree(cluster)
        return [d for d in self.space.parallelism_degrees if d <= cap] or [1]


class RandomEnumeration(EnumerationStrategy):
    """Uniformly random degree per operator, for coverage of corner cases."""

    name = "random"

    def assignments(self, plan, cluster, rng) -> Iterator[dict[str, int]]:
        allowed = self._allowed_degrees(cluster)
        ops = self._scalable_ops(plan)
        while True:
            yield {
                op_id: int(allowed[int(rng.integers(len(allowed)))])
                for op_id in ops
            }


class RuleBasedEnumeration(EnumerationStrategy):
    """Workload-aware degrees (Kalavri-style three-step heuristic).

    For each operator in topological order: its steady-state input rate
    follows from source rates and upstream selectivities; the cores needed
    are ``rate x service time / target utilization``; the degree is that
    requirement rounded up, jittered by ``exploration`` to generate several
    distinct-but-sane plans per query, and capped by the cluster.
    """

    name = "rule-based"

    def __init__(
        self,
        space: ParameterSpace | None = None,
        target_utilization: float = 0.6,
        exploration: float = 0.35,
    ) -> None:
        super().__init__(space)
        if not 0.0 < target_utilization <= 1.0:
            raise ConfigurationError("target_utilization must be in (0, 1]")
        if exploration < 0:
            raise ConfigurationError("exploration must be non-negative")
        self.target_utilization = target_utilization
        self.exploration = exploration

    def required_degrees(
        self, plan: LogicalPlan, cluster: Cluster
    ) -> dict[str, int]:
        """The deterministic core of the heuristic (before jitter)."""
        avg_speed = float(
            np.mean([node.speed_factor for node in cluster.nodes])
        )
        cap = self.max_degree(cluster)
        output_rate: dict[str, float] = {}
        degrees: dict[str, int] = {}
        for op in plan.operators_in_order():
            if op.kind is OperatorKind.SOURCE:
                rate_in = float(op.metadata.get("event_rate", 1000.0))
            else:
                rate_in = sum(
                    output_rate[e.src] for e in plan.in_edges(op.op_id)
                )
            output_rate[op.op_id] = rate_in * op.selectivity
            if op.kind is OperatorKind.SINK:
                degrees[op.op_id] = 1
                continue
            service = op.cost.base_cpu_s / avg_speed
            cores_needed = rate_in * service / self.target_utilization
            degrees[op.op_id] = int(
                min(max(math.ceil(cores_needed), 1), cap)
            )
        return degrees

    def assignments(self, plan, cluster, rng) -> Iterator[dict[str, int]]:
        base = self.required_degrees(plan, cluster)
        cap = self.max_degree(cluster)
        while True:
            jittered = {}
            for op_id, degree in base.items():
                if plan.operator(op_id).kind is OperatorKind.SINK:
                    jittered[op_id] = 1
                    continue
                factor = float(
                    rng.uniform(1.0 - self.exploration,
                                1.0 + self.exploration)
                )
                jittered[op_id] = int(
                    min(max(round(degree * factor), 1), cap)
                )
            yield jittered


class ExhaustiveEnumeration(EnumerationStrategy):
    """Every combination of candidate degrees (bounded by the caller)."""

    name = "exhaustive"

    def __init__(
        self,
        space: ParameterSpace | None = None,
        candidate_degrees: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(space)
        self.candidate_degrees = candidate_degrees

    def assignments(self, plan, cluster, rng) -> Iterator[dict[str, int]]:
        candidates = list(
            self.candidate_degrees or self._allowed_degrees(cluster)
        )
        ops = self._scalable_ops(plan)
        for combo in itertools.product(candidates, repeat=len(ops)):
            yield dict(zip(ops, combo))


class MinAvgMaxEnumeration(EnumerationStrategy):
    """Cycles minimum, average and maximum uniform degrees."""

    name = "min-avg-max"

    def assignments(self, plan, cluster, rng) -> Iterator[dict[str, int]]:
        allowed = self._allowed_degrees(cluster)
        ops = self._scalable_ops(plan)
        minimum = allowed[0]
        maximum = allowed[-1]
        average = allowed[len(allowed) // 2]
        for degree in itertools.cycle((minimum, average, maximum)):
            yield {op_id: degree for op_id in ops}


class IncreasingEnumeration(EnumerationStrategy):
    """Steps the uniform degree up through the allowed list, then repeats."""

    name = "increasing"

    def assignments(self, plan, cluster, rng) -> Iterator[dict[str, int]]:
        allowed = self._allowed_degrees(cluster)
        ops = self._scalable_ops(plan)
        for degree in itertools.cycle(allowed):
            yield {op_id: degree for op_id in ops}


class ParameterBasedEnumeration(EnumerationStrategy):
    """Exactly the degrees the user configured (rapid targeted testing)."""

    name = "parameter-based"

    def __init__(
        self,
        degrees: int | dict[str, int],
        space: ParameterSpace | None = None,
    ) -> None:
        super().__init__(space)
        self.degrees = degrees

    def assignments(self, plan, cluster, rng) -> Iterator[dict[str, int]]:
        ops = self._scalable_ops(plan)
        if isinstance(self.degrees, dict):
            missing = [op for op in ops if op not in self.degrees]
            if missing:
                raise ConfigurationError(
                    f"parameter-based degrees missing operators: {missing}"
                )
            assignment = {op: int(self.degrees[op]) for op in ops}
        else:
            assignment = {op: int(self.degrees) for op in ops}
        while True:
            yield dict(assignment)


_STRATEGIES = {
    cls.name: cls
    for cls in (
        RandomEnumeration,
        RuleBasedEnumeration,
        ExhaustiveEnumeration,
        MinAvgMaxEnumeration,
        IncreasingEnumeration,
    )
}


def strategy_by_name(name: str, **kwargs) -> EnumerationStrategy:
    """Construct a strategy by its paper name (parameter-based needs args)."""
    if name == ParameterBasedEnumeration.name:
        return ParameterBasedEnumeration(**kwargs)
    try:
        return _STRATEGIES[name](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES) + ["parameter-based"])
        raise ConfigurationError(
            f"unknown enumeration strategy {name!r}; known: {known}"
        ) from None
