"""Value distributions for synthetic data streams.

The paper generates synthetic data by *domain randomization* — randomly
varying tuple width, per-item data types and event rates — and models value
skew with distributions like Zipf. Each distribution here can both sample
values and answer the probability questions the selectivity estimator needs
(CDF, point mass, quantile), which is how generated filters keep their
selectivity inside a valid band (Section 3.1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.types import DataType

__all__ = [
    "ValueDistribution",
    "UniformInt",
    "UniformDouble",
    "GaussianDouble",
    "ZipfInt",
    "StringVocabulary",
    "default_distribution",
]


class ValueDistribution:
    """Base class: a typed value source with probability queries."""

    dtype: DataType

    def sample(self, rng: np.random.Generator):
        """Draw one value."""
        raise NotImplementedError

    def cdf(self, value) -> float:
        """P(X <= value)."""
        raise NotImplementedError

    def point_mass(self, value) -> float:
        """P(X == value) (0 for continuous distributions)."""
        raise NotImplementedError

    def quantile(self, q: float):
        """Smallest value v with cdf(v) >= q."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short label for logs and stored workload records."""
        raise NotImplementedError


def _check_q(q: float) -> None:
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")


class UniformInt(ValueDistribution):
    """Integers uniform on [lo, hi] inclusive."""

    dtype = DataType.INT

    def __init__(self, lo: int = 0, hi: int = 999) -> None:
        if hi < lo:
            raise ConfigurationError(f"need lo <= hi, got [{lo}, {hi}]")
        self.lo = int(lo)
        self.hi = int(hi)

    @property
    def _n(self) -> int:
        return self.hi - self.lo + 1

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def cdf(self, value) -> float:
        if value < self.lo:
            return 0.0
        if value >= self.hi:
            return 1.0
        return (math.floor(value) - self.lo + 1) / self._n

    def point_mass(self, value) -> float:
        if self.lo <= value <= self.hi and float(value).is_integer():
            return 1.0 / self._n
        return 0.0

    def quantile(self, q: float) -> int:
        _check_q(q)
        return min(self.lo + math.ceil(q * self._n) - 1, self.hi)

    def describe(self) -> str:
        return f"uniform-int[{self.lo},{self.hi}]"


class UniformDouble(ValueDistribution):
    """Doubles uniform on [lo, hi)."""

    dtype = DataType.DOUBLE

    def __init__(self, lo: float = 0.0, hi: float = 1.0) -> None:
        if hi <= lo:
            raise ConfigurationError(f"need lo < hi, got [{lo}, {hi})")
        self.lo = float(lo)
        self.hi = float(hi)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.lo, self.hi))

    def cdf(self, value) -> float:
        if value <= self.lo:
            return 0.0
        if value >= self.hi:
            return 1.0
        return (value - self.lo) / (self.hi - self.lo)

    def point_mass(self, value) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        _check_q(q)
        return self.lo + q * (self.hi - self.lo)

    def describe(self) -> str:
        return f"uniform-double[{self.lo:g},{self.hi:g})"


class GaussianDouble(ValueDistribution):
    """Normally distributed doubles."""

    dtype = DataType.DOUBLE

    def __init__(self, mean: float = 0.0, std: float = 1.0) -> None:
        if std <= 0:
            raise ConfigurationError("std must be positive")
        self.mean = float(mean)
        self.std = float(std)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mean, self.std))

    def cdf(self, value) -> float:
        z = (value - self.mean) / (self.std * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def point_mass(self, value) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        _check_q(q)
        # Acklam-style rational approximation via scipy would also work;
        # binary search keeps dependencies local and is exact enough here.
        lo = self.mean - 10 * self.std
        hi = self.mean + 10 * self.std
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def describe(self) -> str:
        return f"gaussian({self.mean:g},{self.std:g})"


class ZipfInt(ValueDistribution):
    """Zipf-skewed integers 1..n with exponent s (Table 3's zipf option)."""

    dtype = DataType.INT

    def __init__(self, n: int = 100, s: float = 1.1) -> None:
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        if s <= 0:
            raise ConfigurationError("exponent must be positive")
        self.n = int(n)
        self.s = float(s)
        weights = np.arange(1, self.n + 1, dtype=float) ** (-self.s)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self.n, p=self._pmf)) + 1

    def cdf(self, value) -> float:
        if value < 1:
            return 0.0
        if value >= self.n:
            return 1.0
        return float(self._cdf[int(math.floor(value)) - 1])

    def point_mass(self, value) -> float:
        if 1 <= value <= self.n and float(value).is_integer():
            return float(self._pmf[int(value) - 1])
        return 0.0

    def quantile(self, q: float) -> int:
        _check_q(q)
        index = int(np.searchsorted(self._cdf, q, side="left"))
        return min(index, self.n - 1) + 1

    def describe(self) -> str:
        return f"zipf(n={self.n},s={self.s:g})"


#: Default vocabulary for string fields: short tokens with a shared prefix
#: structure so prefix filters have tunable selectivity.
_DEFAULT_WORDS = tuple(
    f"{prefix}{suffix:02d}"
    for prefix in ("alpha", "beta", "gamma", "delta", "epsilon")
    for suffix in range(20)
)


class StringVocabulary(ValueDistribution):
    """Categorical strings with optional weights."""

    dtype = DataType.STRING

    def __init__(
        self,
        words: tuple[str, ...] = _DEFAULT_WORDS,
        weights: tuple[float, ...] | None = None,
    ) -> None:
        if not words:
            raise ConfigurationError("vocabulary must be non-empty")
        if len(set(words)) != len(words):
            raise ConfigurationError("vocabulary words must be unique")
        self.words = tuple(words)
        if weights is None:
            probabilities = np.full(len(words), 1.0 / len(words))
        else:
            if len(weights) != len(words):
                raise ConfigurationError("weights must match words")
            arr = np.asarray(weights, dtype=float)
            if (arr < 0).any() or arr.sum() <= 0:
                raise ConfigurationError("weights must be non-negative")
            probabilities = arr / arr.sum()
        self._pmf = probabilities
        order = sorted(range(len(words)), key=lambda i: words[i])
        self._sorted_words = [words[i] for i in order]
        self._sorted_cdf = np.cumsum([probabilities[i] for i in order])

    def sample(self, rng: np.random.Generator) -> str:
        return self.words[int(rng.choice(len(self.words), p=self._pmf))]

    def cdf(self, value) -> float:
        """Lexicographic CDF: P(word <= value)."""
        import bisect

        idx = bisect.bisect_right(self._sorted_words, value)
        if idx == 0:
            return 0.0
        return float(self._sorted_cdf[idx - 1])

    def point_mass(self, value) -> float:
        try:
            return float(self._pmf[self.words.index(value)])
        except ValueError:
            return 0.0

    def quantile(self, q: float) -> str:
        _check_q(q)
        idx = int(np.searchsorted(self._sorted_cdf, q, side="left"))
        return self._sorted_words[min(idx, len(self._sorted_words) - 1)]

    def prefix_mass(self, prefix: str) -> float:
        """P(word startswith prefix) — selectivity of a prefix filter."""
        return float(
            sum(
                p
                for word, p in zip(self.words, self._pmf)
                if word.startswith(prefix)
            )
        )

    def substring_mass(self, needle: str) -> float:
        """P(needle in word) — selectivity of a contains filter."""
        return float(
            sum(
                p
                for word, p in zip(self.words, self._pmf)
                if needle in word
            )
        )

    def suffix_mass(self, suffix: str) -> float:
        """P(word endswith suffix) — selectivity of an endswith filter."""
        return float(
            sum(
                p
                for word, p in zip(self.words, self._pmf)
                if word.endswith(suffix)
            )
        )

    def describe(self) -> str:
        return f"vocab({len(self.words)} words)"


def default_distribution(
    dtype: DataType, rng: np.random.Generator
) -> ValueDistribution:
    """A randomly parameterised distribution for a field of the given type."""
    if dtype is DataType.INT:
        if rng.random() < 0.3:
            return ZipfInt(n=int(rng.integers(20, 200)), s=1.1)
        hi = int(rng.integers(10, 10_000))
        return UniformInt(0, hi)
    if dtype is DataType.DOUBLE:
        if rng.random() < 0.3:
            return GaussianDouble(
                mean=float(rng.uniform(-10, 10)),
                std=float(rng.uniform(0.5, 5.0)),
            )
        return UniformDouble(0.0, float(rng.uniform(1.0, 1000.0)))
    return StringVocabulary()
