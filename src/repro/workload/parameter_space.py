"""The evaluation parameter ranges of Table 3.

Every range is configurable (the paper: "these values are highly
configurable in PDSP-Bench"); the module-level constants are the defaults
the paper reports, and :class:`ParameterSpace` bundles one concrete choice
of ranges with sampling helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.predicates import FilterFunction
from repro.sps.types import DataType
from repro.sps.windows import AggregateFunction

__all__ = [
    "PARALLELISM_DEGREES",
    "PARALLELISM_CATEGORIES",
    "EVENT_RATES",
    "WINDOW_DURATIONS_MS",
    "WINDOW_LENGTHS",
    "SLIDING_RATIOS",
    "TUPLE_WIDTHS",
    "PARTITIONING_STRATEGIES",
    "ParameterSpace",
]

#: Parallelism degrees enumerated by the paper (upper end used on the large
#: heterogeneous cluster; 128 exceeds single-node cores and forces
#: distribution).
PARALLELISM_DEGREES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

#: The parallelism *categories* the figures are labelled with.
PARALLELISM_CATEGORIES: dict[str, int] = {
    "XS": 1,
    "S": 2,
    "M": 4,
    "L": 8,
    "XL": 16,
    "XXL": 32,
}

#: Event rates (events/second) of Table 3: "10, 100, 1k, 5k, 10k, 50k,
#: 100k, 200k, 500k, 1mn, 2mn, 4mn".
EVENT_RATES: tuple[float, ...] = (
    10.0,
    100.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    200_000.0,
    500_000.0,
    1_000_000.0,
    2_000_000.0,
    4_000_000.0,
)

#: Time-window durations in milliseconds.
WINDOW_DURATIONS_MS: tuple[int, ...] = (250, 500, 750, 1000)

#: Count-window lengths in tuples.
WINDOW_LENGTHS: tuple[int, ...] = (10, 50, 100, 500, 1000)

#: Sliding length as a ratio of window length (Table 3).
SLIDING_RATIOS: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7)

#: Tuple widths: 1-15 data items per tuple.
TUPLE_WIDTHS: tuple[int, ...] = tuple(range(1, 16))

#: Data partitioning strategies of Table 3.
PARTITIONING_STRATEGIES: tuple[str, ...] = ("forward", "rebalance", "hashing")


@dataclass(frozen=True)
class ParameterSpace:
    """One concrete workload parameter space, with sampling helpers."""

    parallelism_degrees: tuple[int, ...] = PARALLELISM_DEGREES
    event_rates: tuple[float, ...] = EVENT_RATES
    window_durations_ms: tuple[int, ...] = WINDOW_DURATIONS_MS
    window_lengths: tuple[int, ...] = WINDOW_LENGTHS
    sliding_ratios: tuple[float, ...] = SLIDING_RATIOS
    tuple_widths: tuple[int, ...] = TUPLE_WIDTHS
    data_types: tuple[DataType, ...] = (
        DataType.STRING,
        DataType.INT,
        DataType.DOUBLE,
    )
    aggregate_functions: tuple[AggregateFunction, ...] = tuple(
        AggregateFunction
    )
    filter_functions: tuple[FilterFunction, ...] = tuple(FilterFunction)
    selectivity_band: tuple[float, float] = (0.15, 0.85)
    key_cardinality: int = 100

    def __post_init__(self) -> None:
        if not self.parallelism_degrees or min(self.parallelism_degrees) < 1:
            raise ConfigurationError("parallelism degrees must be >= 1")
        if not self.event_rates or min(self.event_rates) <= 0:
            raise ConfigurationError("event rates must be positive")
        lo, hi = self.selectivity_band
        if not 0.0 < lo < hi < 1.0:
            raise ConfigurationError(
                "selectivity band must satisfy 0 < lo < hi < 1"
            )
        if self.key_cardinality < 1:
            raise ConfigurationError("key cardinality must be >= 1")

    # ------------------------------------------------------------- sampling

    def sample_event_rate(self, rng: np.random.Generator) -> float:
        """Draw one of the configured event rates."""
        return float(rng.choice(self.event_rates))

    def sample_tuple_width(self, rng: np.random.Generator) -> int:
        """Draw a tuple width."""
        return int(rng.choice(self.tuple_widths))

    def sample_window_duration_s(self, rng: np.random.Generator) -> float:
        """Draw a time-window duration (seconds)."""
        return float(rng.choice(self.window_durations_ms)) * 1e-3

    def sample_window_length(self, rng: np.random.Generator) -> int:
        """Draw a count-window length (tuples)."""
        return int(rng.choice(self.window_lengths))

    def sample_sliding_ratio(self, rng: np.random.Generator) -> float:
        """Draw a sliding ratio."""
        return float(rng.choice(self.sliding_ratios))

    def sample_parallelism(self, rng: np.random.Generator) -> int:
        """Draw a parallelism degree."""
        return int(rng.choice(self.parallelism_degrees))

    def sample_aggregate(
        self, rng: np.random.Generator
    ) -> AggregateFunction:
        """Draw an aggregate function."""
        return self.aggregate_functions[
            int(rng.integers(len(self.aggregate_functions)))
        ]

    def sample_data_type(self, rng: np.random.Generator) -> DataType:
        """Draw a data type for a field."""
        return self.data_types[int(rng.integers(len(self.data_types)))]
