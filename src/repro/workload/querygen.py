"""Synthetic parallel query plan (PQP) structures.

The paper offers "an extensive range of PQP from an array of query
structures, including simple linear queries with one filter to complex
configurations involving multi-way joins and multiple chained filters"
(Section 3.1) and counts 9 synthetic applications in Table 1. The nine
structures here span that range; each build randomises window parameters,
aggregate functions and selectivity-checked filter literals over Table 3's
ranges.

For Exp 3, the paper trains cost models on *seen* structures (linear, 2-way
and 3-way joins) and evaluates on the remaining *unseen* ones;
:attr:`QueryStructure.is_seen` encodes that split.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.predicates import Predicate
from repro.sps.windows import (
    AggregateFunction,
    SlidingTimeWindows,
    TumblingCountWindows,
    TumblingTimeWindows,
    WindowAssigner,
)
from repro.workload.datagen import StreamSpec, random_stream_spec
from repro.workload.parameter_space import ParameterSpace
from repro.workload.selectivity import draw_predicate

__all__ = ["QueryStructure", "GeneratedQuery", "build_structure"]


class QueryStructure(enum.Enum):
    """The nine synthetic PQP structures."""

    LINEAR = "linear"
    TWO_FILTER_CHAIN = "two_filter_chain"
    THREE_FILTER_CHAIN = "three_filter_chain"
    WINDOW_AGG = "window_agg"
    TWO_WAY_JOIN = "two_way_join"
    THREE_WAY_JOIN = "three_way_join"
    FOUR_WAY_JOIN = "four_way_join"
    FIVE_WAY_JOIN = "five_way_join"
    FILTER_JOIN_AGG = "filter_join_agg"

    @property
    def num_sources(self) -> int:
        """Number of input streams the structure consumes."""
        return {
            QueryStructure.TWO_WAY_JOIN: 2,
            QueryStructure.THREE_WAY_JOIN: 3,
            QueryStructure.FOUR_WAY_JOIN: 4,
            QueryStructure.FIVE_WAY_JOIN: 5,
            QueryStructure.FILTER_JOIN_AGG: 2,
        }.get(self, 1)

    @property
    def num_joins(self) -> int:
        """Number of (2-way) join operators in the cascade."""
        return max(self.num_sources - 1, 0)

    @property
    def is_seen(self) -> bool:
        """Whether Exp 3 uses this structure for training ('seen')."""
        return self in (
            QueryStructure.LINEAR,
            QueryStructure.TWO_WAY_JOIN,
            QueryStructure.THREE_WAY_JOIN,
        )

    @property
    def complexity_rank(self) -> int:
        """Ordering used on figure axes, simplest first."""
        order = [
            QueryStructure.LINEAR,
            QueryStructure.WINDOW_AGG,
            QueryStructure.TWO_FILTER_CHAIN,
            QueryStructure.THREE_FILTER_CHAIN,
            QueryStructure.TWO_WAY_JOIN,
            QueryStructure.FILTER_JOIN_AGG,
            QueryStructure.THREE_WAY_JOIN,
            QueryStructure.FOUR_WAY_JOIN,
            QueryStructure.FIVE_WAY_JOIN,
        ]
        return order.index(self)


@dataclass
class GeneratedQuery:
    """One generated PQP plus the streams and parameters that shaped it."""

    plan: LogicalPlan
    streams: list[StreamSpec]
    structure: QueryStructure
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def event_rate(self) -> float:
        """Total event rate across all sources."""
        return sum(s.event_rate for s in self.streams)


def _sample_time_assigner(
    rng: np.random.Generator, space: ParameterSpace
) -> WindowAssigner:
    duration = space.sample_window_duration_s(rng)
    if rng.random() < 0.5:
        return TumblingTimeWindows(duration)
    ratio = space.sample_sliding_ratio(rng)
    return SlidingTimeWindows(duration, duration * ratio)


def _sample_agg_assigner(
    rng: np.random.Generator, space: ParameterSpace
) -> WindowAssigner:
    if rng.random() < 0.3:
        return TumblingCountWindows(space.sample_window_length(rng))
    return _sample_time_assigner(rng, space)


def _numeric_agg_function(
    rng: np.random.Generator, space: ParameterSpace
) -> AggregateFunction:
    return space.sample_aggregate(rng)


def _agg_selectivity(
    assigner: WindowAssigner, input_rate: float, keys: int
) -> float:
    """Expected aggregate outputs per input tuple."""
    if not assigner.is_time_based:
        return 1.0 / assigner.feature_length
    duration = assigner.feature_length
    per_window_inputs = max(input_rate * duration, 1.0)
    active_keys = min(keys, per_window_inputs)
    slide_ratio = assigner.feature_slide_ratio
    return min(active_keys / (per_window_inputs * slide_ratio), 4.0)


def _join_selectivity(
    assigner: WindowAssigner, other_rate: float, keys: int
) -> float:
    """Expected join matches per input tuple (symmetric hash join)."""
    duration = assigner.feature_length
    windows_per_tuple = 1.0 / assigner.feature_slide_ratio
    matches = other_rate * duration / max(keys, 1)
    return min(matches * windows_per_tuple, 32.0)


def _conjunction_selectivity(
    distribution, predicates, rng: np.random.Generator, samples: int = 300
) -> float:
    """Monte-Carlo estimate of P(all predicates pass) on one field."""
    from repro.sps.tuples import StreamTuple

    passed = 0
    for _ in range(samples):
        value = distribution.sample(rng)
        probe = StreamTuple(values=(value,), event_time=0.0)
        shifted = [
            Predicate(0, p.function, p.literal, p.selectivity_hint)
            for p in predicates
        ]
        if all(p.evaluate(probe) for p in shifted):
            passed += 1
    return passed / samples


def _add_filter(
    plan: LogicalPlan,
    op_id: str,
    stream: StreamSpec,
    rng: np.random.Generator,
    space: ParameterSpace,
    existing: dict[int, list[Predicate]] | None = None,
) -> None:
    """Add one filter, keeping the *conjunction* with earlier filters on

    the same field non-degenerate (the paper's validity requirement: data
    must keep passing the generated filters). Filters prefer fields not
    yet filtered; when a field must be reused, the predicate is redrawn
    until at least ~5% of values survive the combined condition.
    """
    existing = existing if existing is not None else {}
    width = stream.tuple_width
    candidates = list(range(1, width)) if width > 1 else [0]
    unused = [i for i in candidates if i not in existing]
    pool = unused or candidates
    index = int(pool[int(rng.integers(len(pool)))])
    distribution = stream.fields[index].distribution
    predicate = draw_predicate(
        distribution, index, rng, band=space.selectivity_band
    )
    prior = existing.get(index, [])
    if prior:
        for _ in range(30):
            if (
                _conjunction_selectivity(
                    distribution, [*prior, predicate], rng
                )
                >= 0.05
            ):
                break
            predicate = draw_predicate(
                distribution, index, rng, band=space.selectivity_band
            )
    existing.setdefault(index, []).append(predicate)
    plan.add_operator(builders.filter_op(op_id, predicate))


def _value_field(stream: StreamSpec, rng: np.random.Generator) -> int:
    numeric = [i for i in stream.numeric_field_indices() if i != 0]
    if numeric:
        return int(numeric[int(rng.integers(len(numeric)))])
    return 0


def build_structure(
    structure: QueryStructure,
    rng: np.random.Generator,
    space: ParameterSpace | None = None,
    event_rate: float | None = None,
) -> GeneratedQuery:
    """Instantiate one synthetic PQP of the given structure.

    All operators start at parallelism 1; callers apply an enumeration
    strategy (:mod:`repro.workload.enumeration`) or
    :meth:`LogicalPlan.set_uniform_parallelism` afterwards.
    """
    space = space or ParameterSpace()
    if structure.num_joins > 0:
        return _build_join_query(structure, rng, space, event_rate)
    return _build_pipeline_query(structure, rng, space, event_rate)


def _build_pipeline_query(
    structure: QueryStructure,
    rng: np.random.Generator,
    space: ParameterSpace,
    event_rate: float | None,
) -> GeneratedQuery:
    num_filters = {
        QueryStructure.LINEAR: 1,
        QueryStructure.TWO_FILTER_CHAIN: 2,
        QueryStructure.THREE_FILTER_CHAIN: 3,
        QueryStructure.WINDOW_AGG: 0,
    }.get(structure)
    if num_filters is None:
        raise ConfigurationError(
            f"{structure} is not a pipeline structure"
        )
    stream = random_stream_spec("src0", rng, space, event_rate)
    plan = LogicalPlan(structure.value)
    plan.add_operator(
        builders.source(
            "src0",
            stream.generator(),
            stream.schema(),
            stream.event_rate,
            arrival=stream.arrival,
        )
    )
    previous = "src0"
    passthrough = 1.0
    chained: dict[int, list] = {}
    for i in range(num_filters):
        op_id = f"filter{i}"
        _add_filter(plan, op_id, stream, rng, space, existing=chained)
        plan.connect(previous, op_id)
        passthrough *= plan.operator(op_id).selectivity
        previous = op_id
    assigner = _sample_agg_assigner(rng, space)
    agg_input_rate = stream.event_rate * passthrough
    agg = builders.window_agg(
        "agg0",
        assigner,
        _numeric_agg_function(rng, space),
        value_field=_value_field(stream, rng),
        key_field=0,
        selectivity=_agg_selectivity(
            assigner, agg_input_rate, space.key_cardinality
        ),
    )
    agg.metadata["key_cardinality"] = space.key_cardinality
    plan.add_operator(agg)
    plan.connect(previous, "agg0")
    plan.add_operator(builders.sink("sink"))
    plan.connect("agg0", "sink")
    return GeneratedQuery(
        plan=plan,
        streams=[stream],
        structure=structure,
        params={
            "num_filters": num_filters,
            "window": assigner.describe(),
            "event_rate": stream.event_rate,
        },
    )


def _build_join_query(
    structure: QueryStructure,
    rng: np.random.Generator,
    space: ParameterSpace,
    event_rate: float | None,
) -> GeneratedQuery:
    num_sources = structure.num_sources
    with_filters = structure is QueryStructure.FILTER_JOIN_AGG
    # All sources share the event rate so the join is balanced, as in the
    # paper's 2-way join example (Figure 2 left).
    shared_rate = (
        float(event_rate)
        if event_rate is not None
        else space.sample_event_rate(rng)
    )
    assigner = _sample_time_assigner(rng, space)
    # Join-key cardinality scales with rate x window so each probe expects
    # roughly one match (as in impression/click-style joins); a fixed tiny
    # key domain at high rates would make every join a cross-product.
    join_keys = max(
        space.key_cardinality,
        int(shared_rate * assigner.feature_length),
    )
    streams = [
        random_stream_spec(
            f"src{i}", rng, space, shared_rate, key_cardinality=join_keys
        )
        for i in range(num_sources)
    ]
    plan = LogicalPlan(structure.value)
    for i, stream in enumerate(streams):
        plan.add_operator(
            builders.source(
                f"src{i}",
                stream.generator(),
                stream.schema(),
                stream.event_rate,
                arrival=stream.arrival,
            )
        )
    upstream_ids = []
    upstream_rates = []
    for i, stream in enumerate(streams):
        if with_filters:
            op_id = f"filter{i}"
            _add_filter(plan, op_id, stream, rng, space)
            plan.connect(f"src{i}", op_id)
            upstream_ids.append(op_id)
            upstream_rates.append(
                stream.event_rate * plan.operator(op_id).selectivity
            )
        else:
            upstream_ids.append(f"src{i}")
            upstream_rates.append(stream.event_rate)
    # Cascade of 2-way joins: ((s0 ⋈ s1) ⋈ s2) ⋈ ...
    # The join key is field 0 of every stream; join outputs concatenate
    # values, so the key stays at field 0 downstream.
    left_id = upstream_ids[0]
    left_rate = upstream_rates[0]
    left_key_field = 0
    for j in range(structure.num_joins):
        right_id = upstream_ids[j + 1]
        right_rate = upstream_rates[j + 1]
        join_id = f"join{j}"
        selectivity = _join_selectivity(
            assigner,
            other_rate=min(left_rate, right_rate),
            keys=join_keys,
        )
        plan.add_operator(
            builders.window_join(
                join_id,
                assigner,
                left_key_field=left_key_field,
                right_key_field=0,
                selectivity=selectivity,
            )
        )
        plan.connect(left_id, join_id, port=0)
        plan.connect(right_id, join_id, port=1)
        left_id = join_id
        left_rate = (left_rate + right_rate) * selectivity
        left_key_field = 0
    agg_assigner = _sample_time_assigner(rng, space)
    agg = builders.window_agg(
        "agg0",
        agg_assigner,
        _numeric_agg_function(rng, space),
        value_field=_agg_value_field_for_join(streams, rng),
        key_field=0,
        selectivity=_agg_selectivity(
            agg_assigner, max(left_rate, 1.0), join_keys
        ),
    )
    agg.metadata["key_cardinality"] = join_keys
    plan.add_operator(agg)
    plan.connect(left_id, "agg0")
    plan.add_operator(builders.sink("sink"))
    plan.connect("agg0", "sink")
    return GeneratedQuery(
        plan=plan,
        streams=streams,
        structure=structure,
        params={
            "num_joins": structure.num_joins,
            "window": assigner.describe(),
            "event_rate": shared_rate,
            "with_filters": with_filters,
        },
    )


def _agg_value_field_for_join(
    streams: list[StreamSpec], rng: np.random.Generator
) -> int:
    """A numeric field index valid in the concatenated join output."""
    first = streams[0]
    numeric = [i for i in first.numeric_field_indices()]
    return int(numeric[int(rng.integers(len(numeric)))]) if numeric else 0
