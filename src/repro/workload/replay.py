"""Recorded-trace replay: the Kafka data-producer stand-in.

For real-world applications the paper feeds the SUT from Kafka and
"repeat[s] the data stream read from the source to mimic infinite data
streams". This module provides the same facility for the simulator:

- :class:`RecordedTrace` — a finite sequence of value tuples (a
  "topic"), loadable from / savable to the document store;
- :func:`replay_generator` — wraps a trace into the engine's tuple
  generator, cycling it forever (each source subtask starts at a
  different offset so parallel sources don't emit in lock-step);
- :func:`diurnal_rate_profile` — a day-curve modulation for arrival
  rates, approximating the non-stationary load of traces like the
  DEBS 2014 smart-plug recordings.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.tuples import StreamTuple
from repro.sps.types import Schema

__all__ = ["RecordedTrace", "replay_generator", "diurnal_rate_profile"]


class RecordedTrace:
    """A finite recorded stream of value tuples with a schema."""

    def __init__(self, name: str, schema: Schema, rows: Sequence[tuple]):
        if not rows:
            raise ConfigurationError("a trace needs at least one row")
        width = schema.width
        for i, row in enumerate(rows):
            if len(row) != width:
                raise ConfigurationError(
                    f"trace row {i} has {len(row)} values, schema "
                    f"expects {width}"
                )
        self.name = name
        self.schema = schema
        self.rows = [tuple(row) for row in rows]

    def __len__(self) -> int:
        return len(self.rows)

    @classmethod
    def record(
        cls,
        name: str,
        schema: Schema,
        sampler,
        count: int,
        rng: np.random.Generator,
    ) -> "RecordedTrace":
        """Record a trace by sampling a generator ``count`` times."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        return cls(name, schema, [sampler(rng) for _ in range(count)])

    # --------------------------------------------------------- persistence

    def save(self, collection) -> int:
        """Persist the trace (schema + rows) in a document store."""
        return collection.insert_one(
            {
                "name": self.name,
                "fields": [
                    {"name": f.name, "dtype": f.dtype.value}
                    for f in self.schema.fields
                ],
                "rows": [list(row) for row in self.rows],
            }
        )

    @classmethod
    def load(cls, collection, name: str) -> "RecordedTrace":
        """Load a trace by name."""
        document = collection.find_one({"name": name})
        if document is None:
            raise ConfigurationError(f"no recorded trace named {name!r}")
        from repro.sps.types import DataType, Field

        schema = Schema(
            [
                Field(f["name"], DataType(f["dtype"]))
                for f in document["fields"]
            ]
        )
        return cls(
            name, schema, [tuple(row) for row in document["rows"]]
        )


def replay_generator(trace: RecordedTrace):
    """A ``(rng, now) -> StreamTuple`` generator cycling the trace.

    Each engine subtask owns a generator instance via the closure's
    per-call state; the starting offset is drawn from the subtask's own
    rng so parallel source instances do not replay in lock-step (the
    paper's Kafka consumers read distinct partitions).
    """
    size = float(trace.schema.tuple_size_bytes())
    rows = trace.rows
    state = {"cursor": None}

    def generate(rng: np.random.Generator, now: float) -> StreamTuple:
        if state["cursor"] is None:
            state["cursor"] = int(rng.integers(len(rows)))
        row = rows[state["cursor"]]
        state["cursor"] = (state["cursor"] + 1) % len(rows)
        return StreamTuple(values=row, event_time=now, size_bytes=size)

    return generate


def diurnal_rate_profile(
    base_rate: float,
    peak_factor: float = 2.0,
    day_length_s: float = 10.0,
):
    """A day-curve rate modulation function ``time -> rate``.

    Compresses a 24h load curve into ``day_length_s`` simulated seconds:
    the rate swings sinusoidally between ``base_rate / peak_factor``
    (night) and ``base_rate * peak_factor`` (evening peak), which is the
    non-stationarity pattern of smart-grid and traffic traces.
    """
    if base_rate <= 0:
        raise ConfigurationError("base_rate must be positive")
    if peak_factor < 1.0:
        raise ConfigurationError("peak_factor must be >= 1")
    if day_length_s <= 0:
        raise ConfigurationError("day_length_s must be positive")
    log_peak = np.log(peak_factor)

    def rate_at(now: float) -> float:
        phase = 2.0 * np.pi * (now % day_length_s) / day_length_s
        return float(base_rate * np.exp(log_peak * np.sin(phase)))

    return rate_at
