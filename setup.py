"""Legacy shim so editable installs work without the ``wheel`` package.

The offline environment ships a setuptools too old for PEP 660 editable
wheels; ``pip install -e . --no-build-isolation`` falls back to
``setup.py develop`` through this file. Configuration lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
