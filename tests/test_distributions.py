"""Unit tests for value distributions."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sps.types import DataType
from repro.workload.distributions import (
    GaussianDouble,
    StringVocabulary,
    UniformDouble,
    UniformInt,
    ZipfInt,
    default_distribution,
)


class TestUniformInt:
    dist = UniformInt(0, 9)

    def test_samples_in_range(self, rng):
        for _ in range(100):
            assert 0 <= self.dist.sample(rng) <= 9

    def test_cdf(self):
        assert self.dist.cdf(-1) == 0.0
        assert self.dist.cdf(0) == pytest.approx(0.1)
        assert self.dist.cdf(4) == pytest.approx(0.5)
        assert self.dist.cdf(9) == 1.0

    def test_point_mass(self):
        assert self.dist.point_mass(3) == pytest.approx(0.1)
        assert self.dist.point_mass(3.5) == 0.0
        assert self.dist.point_mass(99) == 0.0

    def test_quantile_inverts_cdf(self):
        for q in (0.1, 0.25, 0.5, 0.9, 1.0):
            value = self.dist.quantile(q)
            assert self.dist.cdf(value) >= q - 1e-9

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            UniformInt(5, 4)


class TestUniformDouble:
    dist = UniformDouble(2.0, 4.0)

    def test_cdf_linear(self):
        assert self.dist.cdf(2.0) == 0.0
        assert self.dist.cdf(3.0) == pytest.approx(0.5)
        assert self.dist.cdf(4.0) == 1.0

    def test_quantile(self):
        assert self.dist.quantile(0.25) == pytest.approx(2.5)

    def test_point_mass_zero(self):
        assert self.dist.point_mass(3.0) == 0.0

    def test_samples_in_range(self, rng):
        samples = [self.dist.sample(rng) for _ in range(200)]
        assert all(2.0 <= s < 4.0 for s in samples)


class TestGaussianDouble:
    dist = GaussianDouble(10.0, 2.0)

    def test_cdf_at_mean(self):
        assert self.dist.cdf(10.0) == pytest.approx(0.5)

    def test_quantile_inverts_cdf(self):
        for q in (0.05, 0.3, 0.5, 0.8, 0.99):
            assert self.dist.cdf(self.dist.quantile(q)) == pytest.approx(
                q, abs=1e-6
            )

    def test_invalid_std(self):
        with pytest.raises(ConfigurationError):
            GaussianDouble(0.0, 0.0)


class TestZipfInt:
    dist = ZipfInt(n=50, s=1.2)

    def test_pmf_sums_to_one(self):
        total = sum(self.dist.point_mass(k) for k in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_skew(self):
        assert self.dist.point_mass(1) > 5 * self.dist.point_mass(20)

    def test_cdf_monotone(self):
        values = [self.dist.cdf(k) for k in range(1, 51)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_quantile(self):
        assert self.dist.quantile(0.0) == 1
        assert self.dist.quantile(1.0) == 50

    def test_samples_in_support(self, rng):
        for _ in range(100):
            assert 1 <= self.dist.sample(rng) <= 50


class TestStringVocabulary:
    dist = StringVocabulary(("apple", "apricot", "banana", "cherry"))

    def test_uniform_point_mass(self):
        assert self.dist.point_mass("apple") == pytest.approx(0.25)
        assert self.dist.point_mass("durian") == 0.0

    def test_prefix_mass(self):
        assert self.dist.prefix_mass("ap") == pytest.approx(0.5)
        assert self.dist.prefix_mass("z") == 0.0

    def test_suffix_and_substring_mass(self):
        assert self.dist.suffix_mass("ana") == pytest.approx(0.25)
        assert self.dist.substring_mass("an") == pytest.approx(0.25)

    def test_lexicographic_cdf(self):
        assert self.dist.cdf("a") == 0.0
        assert self.dist.cdf("apple") == pytest.approx(0.25)
        assert self.dist.cdf("zzz") == 1.0

    def test_weighted(self):
        weighted = StringVocabulary(
            ("a", "b"), weights=(3.0, 1.0)
        )
        assert weighted.point_mass("a") == pytest.approx(0.75)

    def test_invalid_vocab(self):
        with pytest.raises(ConfigurationError):
            StringVocabulary(())
        with pytest.raises(ConfigurationError):
            StringVocabulary(("a", "a"))
        with pytest.raises(ConfigurationError):
            StringVocabulary(("a", "b"), weights=(1.0,))

    def test_samples_from_vocab(self, rng):
        for _ in range(50):
            assert self.dist.sample(rng) in self.dist.words


class TestDefaultDistribution:
    def test_types_match(self, rng):
        for dtype in DataType:
            dist = default_distribution(dtype, rng)
            assert dist.dtype is dtype

    def test_randomised_parameters(self, rng):
        descriptions = {
            default_distribution(DataType.INT, rng).describe()
            for _ in range(20)
        }
        assert len(descriptions) > 1
