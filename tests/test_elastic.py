"""Elastic runtime: live rescaling, policies, scenarios, the exp4 grid.

Covers the drain-barrier rescale protocol end to end (explicit
:class:`RescaleEvent`, refusal validation, state migration accounting),
the autoscaling policy plugins as pure strategy objects, the chaos
scenario spec parser and each injection type's determinism, the SLO
metric, sanitizer compatibility, and the exp4 policy-comparison grid.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import RngFactory
from repro.core.experiments.exp4 import (
    elastic_workload_plan,
    policy_comparison,
)
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.elastic import (
    LoadSpike,
    NoAutoscale,
    OpSnapshot,
    PredictiveCostPolicy,
    ReactiveQueuePolicy,
    Scenario,
    make_policy,
    make_scenario,
)
from repro.sps.engine import RescaleEvent, SimulationConfig, StreamEngine
from repro.sps.operators.sink import SinkLogic

#: budget 3000 tuples at 3000 ev/s -> the run spans ~1 simulated second,
#: so rescales and injections land at 0.2-0.5 to fire before the end.
_TUPLES = 3000


def _double(values):
    """Stateless transform used by the chaining refusal test."""
    return (values[0], values[1] * 2.0)


def _run(rescales=(), seed=7, parallelism=2, **cfg_kwargs):
    plan = elastic_workload_plan(parallelism=parallelism)
    config = SimulationConfig(
        max_tuples_per_source=_TUPLES,
        max_sim_time=3.0,
        warmup_fraction=0.0,
        keep_sink_values=True,
        rescales=tuple(rescales),
        **cfg_kwargs,
    )
    engine = StreamEngine(
        plan,
        homogeneous_cluster(num_nodes=4),
        config=config,
        rng_factory=RngFactory(seed),
    )
    metrics = engine.run()
    values = sorted(
        v
        for rt in engine._runtimes
        if isinstance(rt.logic, SinkLogic)
        for v in rt.logic.results
    )
    return metrics, values


def _per_key_totals(values) -> Counter:
    totals: Counter = Counter()
    for key, count in values:
        totals[key] += count
    return totals


class TestExplicitRescale:
    def test_rescale_up_preserves_keyed_totals(self):
        base, v_base = _run()
        up, v_up = _run(rescales=(RescaleEvent(0.3, "agg", 4),))
        elastic = up.extras["elastic"]
        assert elastic["rescales"] == 1
        assert elastic["migrated_keys"] > 0
        entry = elastic["log"][0]
        assert (entry["op"], entry["from"], entry["to"]) == ("agg", 2, 4)
        # No tuple is lost or duplicated across the migration: per-key
        # window totals and total conservation match the fixed run.
        assert _per_key_totals(v_up) == _per_key_totals(v_base)
        assert sum(c for _, c in v_up) == up.source_events
        assert "elastic" not in base.extras

    def test_rescale_down_preserves_keyed_totals(self):
        base, v_base = _run(parallelism=4)
        down, v_down = _run(
            parallelism=4, rescales=(RescaleEvent(0.3, "agg", 1),)
        )
        assert down.extras["elastic"]["rescales"] == 1
        assert _per_key_totals(v_down) == _per_key_totals(v_base)

    def test_rescale_run_twice_is_bit_identical(self):
        m1, v1 = _run(rescales=(RescaleEvent(0.3, "agg", 4),))
        m2, v2 = _run(rescales=(RescaleEvent(0.3, "agg", 4),))
        assert v1 == v2
        assert m1.latency.p50 == m2.latency.p50
        assert m1.extras["elastic"] == m2.extras["elastic"]

    def test_resource_seconds_grow_with_scale_up(self):
        base, _ = _run(rescales=(RescaleEvent(0.9, "agg", 3),))
        up, _ = _run(rescales=(RescaleEvent(0.2, "agg", 6),))
        assert (
            up.extras["elastic"]["resource_seconds"]
            > base.extras["elastic"]["resource_seconds"]
        )

    def test_noop_rescale_to_same_parallelism(self):
        same, values = _run(rescales=(RescaleEvent(0.3, "agg", 2),))
        assert same.extras["elastic"]["rescales"] == 0
        base, v_base = _run()
        assert values == v_base


class TestRescaleRefusal:
    def test_source_is_refused(self):
        with pytest.raises(SimulationError, match="arrival process"):
            _run(rescales=(RescaleEvent(0.3, "src", 4),))

    def test_sink_is_refused(self):
        with pytest.raises(SimulationError, match="sink"):
            _run(rescales=(RescaleEvent(0.3, "sink", 4),))

    def test_unknown_operator_is_refused(self):
        with pytest.raises(SimulationError, match="unknown operator"):
            _run(rescales=(RescaleEvent(0.3, "nope", 4),))

    def test_forward_edge_pins_parallelism(self, simple_plan):
        # simple_plan wires src -> flt forward (equal parallelism,
        # stateless), which pins flt's degree.
        config = SimulationConfig(
            max_tuples_per_source=500,
            max_sim_time=2.0,
            rescales=(RescaleEvent(0.2, "flt", 4),),
        )
        engine = StreamEngine(
            simple_plan,
            homogeneous_cluster(num_nodes=4),
            config=config,
            rng_factory=RngFactory(1),
        )
        with pytest.raises(SimulationError, match="forward input"):
            engine.run()

    def test_chaining_is_incompatible_with_elastic(self, kv_schema):
        # flt -> dbl is a forward edge between equal-parallelism
        # stateless operators, so chaining=True fuses them.
        from repro.sps import builders
        from repro.sps.logical import LogicalPlan
        from repro.sps.predicates import FilterFunction, Predicate
        from repro.sps.windows import (
            AggregateFunction,
            TumblingTimeWindows,
        )
        from tests.conftest import kv_generator

        plan = LogicalPlan("chained")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), kv_schema, event_rate=2000.0,
                parallelism=2,
            )
        )
        plan.add_operator(
            builders.filter_op(
                "flt",
                Predicate(1, FilterFunction.GT, 0.5),
                parallelism=2,
            )
        )
        plan.add_operator(
            builders.map_op("dbl", _double, parallelism=2)
        )
        plan.add_operator(
            builders.window_agg(
                "agg",
                TumblingTimeWindows(0.1),
                AggregateFunction.SUM,
                value_field=1,
                key_field=0,
                parallelism=2,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "flt")
        plan.connect("flt", "dbl")
        plan.connect("dbl", "agg")
        plan.connect("agg", "sink")
        config = SimulationConfig(
            max_tuples_per_source=500,
            rescales=(RescaleEvent(0.2, "agg", 4),),
        )
        with pytest.raises(ConfigurationError, match="chaining"):
            StreamEngine(
                plan,
                homogeneous_cluster(num_nodes=4),
                config=config,
                rng_factory=RngFactory(1),
                chaining=True,
            )

    def test_invalid_rescale_event(self):
        with pytest.raises(ConfigurationError):
            RescaleEvent(-1.0, "agg", 2)
        with pytest.raises(ConfigurationError):
            RescaleEvent(0.5, "agg", 0)


class TestScenarios:
    @pytest.mark.parametrize(
        "spec",
        [
            "spike:at=0.3,factor=3,duration=0.4",
            "straggler:at=0.3,factor=10,duration=0.5",
            "netdeg:at=0.3,latency_factor=8,duration=0.4",
            "failure:at=0.3,duration=0.2",
        ],
    )
    def test_each_injection_runs_and_is_deterministic(self, spec):
        m1, v1 = _run(scenario=spec)
        m2, v2 = _run(scenario=spec)
        assert m1.source_events == _TUPLES
        assert v1 == v2
        assert m1.latency.p50 == m2.latency.p50

    def test_straggler_inflates_latency(self):
        calm, _ = _run()
        slow, _ = _run(
            scenario="straggler:at=0.2,factor=30,duration=0.8"
        )
        assert slow.latency.p95 > calm.latency.p95

    def test_composed_injections(self):
        spec = "spike:at=0.2,factor=2,duration=0.3+failure:at=0.6,duration=0.2"
        metrics, _ = _run(scenario=spec)
        assert metrics.source_events == _TUPLES

    def test_make_scenario_parsing(self):
        assert make_scenario("none").injections == ()
        scenario = make_scenario("spike:at=0.5,factor=3,duration=1.0")
        (spike,) = scenario.injections
        assert isinstance(spike, LoadSpike)
        assert spike.at == 0.5
        assert spike.factor == 3.0
        wrapped = make_scenario(
            LoadSpike(at=1.0, factor=2.0, duration=1.0)
        )
        assert wrapped.injections[0].factor == 2.0
        ready = Scenario(name="x", injections=())
        assert make_scenario(ready) is ready
        with pytest.raises(ConfigurationError, match="unknown injection"):
            make_scenario("meteor:at=1")
        with pytest.raises(ConfigurationError, match="needs a number"):
            make_scenario("spike:at=soon")


class TestPolicies:
    def test_make_policy_parsing(self):
        assert isinstance(make_policy("none"), NoAutoscale)
        assert isinstance(make_policy("static"), NoAutoscale)
        reactive = make_policy("reactive:high=32,low=2,max=8,cooldown=1")
        assert isinstance(reactive, ReactiveQueuePolicy)
        assert reactive.high == 32.0
        assert reactive.max_parallelism == 8
        predictive = make_policy("predictive:util=0.6,min=2")
        assert isinstance(predictive, PredictiveCostPolicy)
        assert predictive.target_util == 0.6
        ready = ReactiveQueuePolicy()
        assert make_policy(ready) is ready
        with pytest.raises(ConfigurationError, match="unknown"):
            make_policy("magic")
        with pytest.raises(ConfigurationError, match="key=value"):
            make_policy("reactive:high")
        with pytest.raises(ConfigurationError, match="rejected"):
            make_policy("reactive:bogus=3")
        with pytest.raises(ConfigurationError, match="hysteresis"):
            make_policy("reactive:high=1,low=2")

    @staticmethod
    def _snap(queue_depth, parallelism=2, utilization=0.9, rate=100.0):
        return OpSnapshot(
            op_id="agg",
            parallelism=parallelism,
            queue_depth=queue_depth,
            utilization=utilization,
            service_rate=rate,
            base_service_s=0.001,
        )

    def test_reactive_hysteresis_band(self):
        policy = ReactiveQueuePolicy(high=10, low=1, cooldown=0.0)
        assert policy.decide(0.0, [self._snap(40)]) == {"agg": 3}
        # Inside the band: no move either way.
        assert policy.decide(1.0, [self._snap(10)]) == {}
        # Below `low` but still busy: no scale-down.
        assert policy.decide(2.0, [self._snap(0, utilization=0.9)]) == {}
        assert policy.decide(3.0, [self._snap(0, utilization=0.1)]) == {
            "agg": 1
        }

    def test_reactive_cooldown_suppresses_oscillation(self):
        policy = ReactiveQueuePolicy(high=10, low=1, cooldown=0.5)
        assert policy.decide(0.0, [self._snap(40)]) == {"agg": 3}
        assert policy.decide(0.2, [self._snap(40)]) == {}
        assert policy.decide(0.6, [self._snap(40)]) == {"agg": 3}

    def test_predictive_sizes_from_cost_model(self):
        policy = PredictiveCostPolicy(
            target_util=0.5, cooldown=1.0, max_parallelism=16
        )
        # demand = 2000 served + 1000 backlog/1s = 3000 tup/s; at 1 ms
        # per tuple and 50% target utilization that needs 6 subtasks.
        snap = self._snap(1000, parallelism=2, rate=2000.0)
        assert policy.decide(0.0, [snap]) == {"agg": 6}

    def test_predictive_scale_down_needs_slack(self):
        policy = PredictiveCostPolicy(target_util=0.5, cooldown=1.0)
        busy = self._snap(0, parallelism=4, rate=100.0, utilization=0.9)
        assert policy.decide(0.0, [busy]) == {}
        idle = self._snap(0, parallelism=4, rate=100.0, utilization=0.1)
        assert policy.decide(0.0, [idle]) == {"agg": 1}

    def test_none_policy_never_moves(self):
        policy = NoAutoscale()
        assert policy.decide(0.0, [self._snap(10_000)]) == {}


class TestAutoscaleLoop:
    def test_reactive_policy_rescales_under_spike(self):
        metrics, _ = _run(
            autoscale="reactive:high=4,low=0.5,cooldown=0.3,max=6",
            autoscale_interval=0.2,
            scenario="spike:at=0.3,factor=3,duration=0.6",
        )
        elastic = metrics.extras["elastic"]
        assert elastic["rescales"] >= 1
        assert elastic["log"]

    def test_none_policy_still_reports_accounting(self):
        metrics, _ = _run(autoscale="none")
        elastic = metrics.extras["elastic"]
        assert elastic["rescales"] == 0
        assert elastic["resource_seconds"] > 0.0


class TestSloMetric:
    def test_slo_violation_seconds_reported(self):
        strained, _ = _run(
            slo_latency=0.05,
            scenario="straggler:at=0.2,factor=30,duration=0.8",
        )
        assert strained.extras["slo_violations"] > 0
        assert strained.extras["slo_violation_s"] > 0.0

    def test_generous_slo_has_zero_violations(self):
        calm, _ = _run(slo_latency=60.0)
        assert calm.extras["slo_violations"] == 0
        assert calm.extras["slo_violation_s"] == 0.0

    def test_no_slo_no_extras(self):
        metrics, _ = _run()
        assert "slo_violation_s" not in metrics.extras


class TestSanitizedRescale:
    def test_race_detector_passes_with_rescaling(self):
        runner = BenchmarkRunner(
            homogeneous_cluster(num_nodes=4),
            RunnerConfig(
                repeats=1,
                max_tuples_per_source=_TUPLES,
                max_sim_time=3.0,
                warmup_fraction=0.0,
                sanitize=True,
                autoscale="reactive:high=4,low=0.5,cooldown=0.3,max=6",
                autoscale_interval=0.2,
                scenario="spike:at=0.3,factor=3,duration=0.6",
                slo_latency=0.15,
            ),
        )
        runs = runner.run_plan(elastic_workload_plan())
        race = runs[0].extras["race"]
        assert race["findings"] == []
        assert any(
            stream.startswith("engine/rescale")
            for stream in race["rng_ledger"]
        )


class TestExp4Grid:
    _POLICIES = ("none", "reactive:high=4,low=0.5,cooldown=0.3,max=6")
    _SCENARIOS = (
        ("baseline", "none"),
        ("spike", "spike:at=0.5,factor=3,duration=1.0"),
    )

    def test_quick_grid_runs_and_is_deterministic(self):
        kwargs = dict(
            policies=self._POLICIES,
            scenarios=self._SCENARIOS,
            quick=True,
        )
        report = policy_comparison(**kwargs)
        again = policy_comparison(**kwargs)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )
        assert len(report["cells"]) == 4
        assert all(
            cell["determinism_error"] is None for cell in report["cells"]
        )
        by_cell = {
            (cell["policy"], cell["scenario"]): cell
            for cell in report["cells"]
        }
        assert by_cell[("none", "spike")]["rescales"] == 0
        assert by_cell[("reactive", "spike")]["rescales"] >= 1
        assert all(
            cell["resource_hours"] > 0 for cell in report["cells"]
        )
