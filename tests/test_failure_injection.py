"""Tests for transient-stall failure injection."""

import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.engine import (
    SimulationConfig,
    StallInjection,
    StreamEngine,
)
from repro.sps.logical import LogicalPlan
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def passthrough_plan(rate=2000.0):
    plan = LogicalPlan("stall-target")
    plan.add_operator(
        builders.source("src", kv_generator(), SCHEMA, event_rate=rate)
    )
    plan.add_operator(
        builders.map_op("work", lambda values: values)
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "work")
    plan.connect("work", "sink")
    return plan


def run(stalls=(), seed=5, tuples=2000):
    engine = StreamEngine(
        passthrough_plan(),
        homogeneous_cluster(num_nodes=2),
        config=SimulationConfig(
            max_tuples_per_source=tuples,
            max_sim_time=5.0,
            warmup_fraction=0.0,
            stalls=tuple(stalls),
        ),
        rng_factory=RngFactory(seed),
    )
    return engine.run()


class TestStallInjection:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StallInjection(at_time=-1.0, op_id="work", duration=0.1)
        with pytest.raises(ConfigurationError):
            StallInjection(at_time=0.0, op_id="work", duration=0.0)

    def test_unknown_operator_rejected(self):
        with pytest.raises(SimulationError, match="unknown operator"):
            run(stalls=[StallInjection(0.1, "ghost", 0.1)])

    def test_stall_creates_tail_latency_spike(self):
        baseline = run()
        stalled = run(
            stalls=[StallInjection(at_time=0.3, op_id="work",
                                   duration=0.2)]
        )
        # The worst-affected tuples waited out the 200ms pause.
        assert stalled.latency.maximum > 0.15
        assert stalled.latency.maximum > 20 * baseline.latency.maximum
        # The median barely moves: the system recovers.
        assert stalled.latency.p50 < 5 * max(baseline.latency.p50, 1e-5)

    def test_all_tuples_still_delivered(self):
        stalled = run(
            stalls=[StallInjection(at_time=0.2, op_id="work",
                                   duration=0.3)]
        )
        assert stalled.results == stalled.source_events

    def test_multiple_stalls_accumulate(self):
        one = run(
            stalls=[StallInjection(0.2, "work", 0.1)]
        )
        three = run(
            stalls=[
                StallInjection(0.2, "work", 0.1),
                StallInjection(0.5, "work", 0.1),
                StallInjection(0.8, "work", 0.1),
            ]
        )
        # More pauses -> more affected tuples: the mean shifts upward
        # even though each individual pause is the same length.
        assert three.latency.mean > one.latency.mean

    def test_stall_beyond_horizon_ignored(self):
        metrics = run(
            stalls=[StallInjection(at_time=100.0, op_id="work",
                                   duration=1.0)]
        )
        assert metrics.latency.maximum < 0.05

    def test_queue_backlog_during_stall(self):
        stalled = run(
            stalls=[StallInjection(at_time=0.3, op_id="work",
                                   duration=0.3)]
        )
        # ~2000/s x 0.3s of arrivals queued behind the pause.
        assert stalled.operator_queue_peak["work"] > 300
