"""Property-based delivery-guarantee tests for checkpoint recovery.

The fault-tolerance subsystem's core promises, checked over randomized
seeds, checkpoint cadences and failure times (DESIGN.md §13):

- **exactly-once**: a run that fails and recovers produces *exactly*
  the failure-free run's sink multiset — the provenance ledger drops
  every replayed duplicate and the replay loses nothing;
- **at-least-once**: the recovered multiset is a superset of the
  failure-free one — duplicates may appear (and are accounted in
  ``extras["ft"]["duplicate_results"]``), losses may not.

The workload keeps the comparison exact by construction: a single
source instance (deterministic replay order into each keyed subtask),
count-based windows (results independent of timing), and a source
budget that generation finishes before any failure fires (replay
re-reads the durable log instead of re-drawing arrival randomness).
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.core.experiments.exp5 import ft_workload_plan
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.operators.sink import SinkLogic

#: Generation ends by ~0.1 s (300 tuples at 3000 ev/s) and the scaled
#: aggregation backlog drains around ~0.55 s, so failure times are
#: drawn from [0.15, 0.5] to land strictly between the two.
_FAIL_AT = st.floats(min_value=0.15, max_value=0.5)
_INTERVALS = st.sampled_from([0.03, 0.05, 0.1, 0.2])
_SEEDS = st.integers(min_value=0, max_value=2**16)


def _run(seed, scenario=None, delivery="exactly_once", interval=None):
    config = SimulationConfig(
        max_tuples_per_source=300,
        max_sim_time=3.0,
        warmup_fraction=0.0,
        keep_sink_values=True,
        scenario=scenario,
        delivery=delivery,
        checkpoint_interval=interval,
    )
    engine = StreamEngine(
        ft_workload_plan(),
        homogeneous_cluster(num_nodes=4),
        config=config,
        rng_factory=RngFactory(seed),
    )
    metrics = engine.run()
    values = sorted(
        v
        for rt in engine._runtimes
        if isinstance(rt.logic, SinkLogic)
        for v in rt.logic.results
    )
    return metrics, values


@settings(max_examples=20, deadline=None)
@given(seed=_SEEDS, at=_FAIL_AT, interval=_INTERVALS)
def test_exactly_once_recovery_equals_failure_free(seed, at, interval):
    _, oracle = _run(seed)
    scenario = f"failure:at={at},duration=0.1"
    metrics, recovered = _run(seed, scenario, "exactly_once", interval)
    ft = metrics.extras["ft"]
    assert ft["recoveries"] == 1
    assert ft["replayed_events"] > 0
    assert ft["duplicate_results"] == 0
    assert ft["lost_results"] == 0
    assert recovered == oracle


@settings(max_examples=20, deadline=None)
@given(seed=_SEEDS, at=_FAIL_AT, interval=_INTERVALS)
def test_at_least_once_recovery_is_lossless_superset(seed, at, interval):
    _, oracle = _run(seed)
    scenario = f"failure:at={at},duration=0.1"
    metrics, recovered = _run(seed, scenario, "at_least_once", interval)
    ft = metrics.extras["ft"]
    assert ft["recoveries"] == 1
    missing = Counter(oracle) - Counter(recovered)
    extra = Counter(recovered) - Counter(oracle)
    assert not missing  # at-least-once never loses a result
    assert sum(extra.values()) == ft["duplicate_results"]
    assert ft["duplicates_dropped"] == 0
    assert ft["lost_results"] == 0


@settings(max_examples=10, deadline=None)
@given(seed=_SEEDS, at=_FAIL_AT)
def test_recovery_is_deterministic(seed, at):
    scenario = f"failure:at={at},duration=0.1"
    m1, v1 = _run(seed, scenario, "exactly_once", 0.05)
    m2, v2 = _run(seed, scenario, "exactly_once", 0.05)
    assert v1 == v2
    assert m1.extras["ft"] == m2.extras["ft"]
    assert m1.latency.p50 == m2.latency.p50


@settings(max_examples=10, deadline=None)
@given(seed=_SEEDS, interval=_INTERVALS)
def test_checkpointing_alone_never_changes_results(seed, interval):
    _, plain = _run(seed)
    _, checkpointed = _run(seed, interval=interval)
    assert checkpointed == plain
