"""Quick-profile coverage of the remaining experiment functions.

Full-size versions run in the benchmark harness; these scaled-down runs
ensure the experiment modules themselves stay correct (series structure,
labels, persistence round-trips).
"""


from repro.cluster import homogeneous_cluster
from repro.core import PDSPBench, RunnerConfig
from repro.core.experiments import (
    figure3_bottom,
    figure4_bottom,
    figure4_top,
    figure6,
)
from repro.report import figure_to_markdown, render_figure
from repro.workload import QueryStructure

TINY = RunnerConfig(
    repeats=1, dilation=25.0, max_tuples_per_source=1200,
    max_sim_time=2.0,
)


class TestFigure3Bottom:
    def test_series_per_app(self):
        figure = figure3_bottom(
            runner_config=TINY,
            apps=("WC", "LP"),
            categories={"XS": 1, "M": 4},
        )
        assert {s.label for s in figure.series} == {"WC", "LP"}
        assert figure.shared_x() == ["XS", "M"]
        assert all(
            all(v > 0 for v in s.y) for s in figure.series
        )


class TestFigure4:
    def _clusters(self):
        return {
            "Ho-m510": homogeneous_cluster("m510", 4),
            "He-c6320": homogeneous_cluster("c6320", 4),
        }

    def test_top_parallelism_tracks_cores(self):
        figure = figure4_top(
            clusters=self._clusters(),
            runner_config=TINY,
            apps=("WC", "SD"),
        )
        labels = [s.label for s in figure.series]
        assert any("p=8" in label for label in labels)
        assert any("p=28" in label for label in labels)
        assert figure.shared_x() == ["WC", "SD"]

    def test_bottom_series_per_cluster(self):
        figure = figure4_bottom(
            clusters=self._clusters(),
            runner_config=TINY,
            categories={"XS": 1, "M": 4},
            structures=(QueryStructure.LINEAR,),
        )
        assert {s.label for s in figure.series} == {
            "Ho-m510", "He-c6320",
        }
        assert len(figure.series[0].y) == 2


class TestFigure6Quick:
    def test_returns_both_figures(self):
        fig6a, fig6b = figure6(
            cluster=homogeneous_cluster("m510", 4),
            training_sizes=(20, 40),
            test_size=40,
            seed=3,
        )
        assert len(fig6a.series) == 4  # 2 strategies x seen/unseen
        assert fig6a.shared_x() == [20, 40]
        assert {s.label for s in fig6b.series} == {
            "rule-based", "random",
        }


class TestFigurePersistence:
    def test_save_and_reload_figure(self, quick_runner_config):
        bench = PDSPBench.homogeneous(
            num_nodes=4, runner_config=quick_runner_config
        )
        figure = figure3_bottom(
            cluster=bench.cluster,
            runner_config=TINY,
            apps=("LP",),
            categories={"XS": 1},
        )
        bench.save_figure(figure)
        stored = bench.stored_figures()
        assert len(stored) == 1
        assert stored[0]["figure_id"] == "fig3-bottom"
        assert stored[0]["series"][0]["label"] == "LP"

    def test_markdown_export(self):
        figure = figure3_bottom(
            runner_config=TINY,
            apps=("LP",),
            categories={"XS": 1},
        )
        markdown = figure_to_markdown(figure)
        assert markdown.startswith("### fig3-bottom")
        assert "| LP" in markdown or "LP |" in markdown
        # Plain rendering still works on the same object.
        assert "fig3-bottom" in render_figure(figure)
