"""Property-based batch ≡ scalar equivalence (hypothesis).

The columnar executor's data plane runs on ideal time, so for any seed,
stream length and batch size the simulated results must match the
scalar engine's — and must be invariant across batch sizes. Hypothesis
drives the batch sizes the ISSUE pins ({1, 7, 64, 1024}) across random
seeds and stream lengths on a plan that exercises the filter, map and
window kernels plus the per-tuple fallback.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])

BATCH_SIZES = st.sampled_from([1, 7, 64, 1024])


class Shift(OperatorLogic):
    """Scalar-only UDO so every plan crosses the fallback boundary."""

    def process(self, tup, now, port=0):
        return [tup.with_values((tup.values[0], tup.values[1] + 0.5))]


def kernel_plan(with_udo):
    plan = LogicalPlan("prop-batch")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=2000.0,
            parallelism=2,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "keep",
            Predicate(1, FilterFunction.GT, 0.2, selectivity_hint=0.8),
            parallelism=2,
        )
    )
    upstream = "keep"
    if with_udo:
        plan.add_operator(builders.udo("shift", Shift))
        plan.connect("keep", "shift")
        upstream = "shift"
    plan.add_operator(
        builders.window_agg(
            "agg",
            TumblingTimeWindows(0.25),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            parallelism=2,
        )
    )
    plan.add_operator(builders.sink("sink", keep_values=True))
    plan.connect("src", "keep")
    plan.connect(upstream, "agg")
    plan.connect("agg", "sink")
    return plan


def simulate(with_udo, batch_size, seed, tuples):
    engine = StreamEngine(
        kernel_plan(with_udo),
        homogeneous_cluster(num_nodes=2),
        config=SimulationConfig(
            max_tuples_per_source=tuples,
            max_sim_time=4.0,
            batch_size=batch_size,
            keep_sink_values=True,
        ),
        rng_factory=RngFactory(seed),
    )
    engine.run()
    values = []
    for runtime in engine._runtimes:
        for logic in getattr(runtime.logic, "logics", None) or (
            runtime.logic,
        ):
            if isinstance(logic, SinkLogic):
                values.extend(logic.results)
    return sorted(
        values,
        key=lambda row: tuple(
            round(x, 6) if isinstance(x, float) else x for x in row
        ),
    )


def assert_rows_close(actual, expected):
    assert len(actual) == len(expected)
    for row_a, row_e in zip(actual, expected):
        for a, e in zip(row_a, row_e):
            if isinstance(a, float):
                assert math.isclose(a, e, rel_tol=1e-9, abs_tol=1e-12)
            else:
                assert a == e


@settings(max_examples=12, deadline=None)
@given(
    batch_size=BATCH_SIZES,
    seed=st.integers(0, 1000),
    tuples=st.integers(20, 250),
)
def test_batch_matches_scalar(batch_size, seed, tuples):
    scalar = simulate(False, None, seed, tuples)
    batched = simulate(False, batch_size, seed, tuples)
    assert_rows_close(batched, scalar)


@settings(max_examples=8, deadline=None)
@given(
    size_a=BATCH_SIZES,
    size_b=BATCH_SIZES,
    seed=st.integers(0, 1000),
)
def test_results_are_batch_size_invariant(size_a, size_b, seed):
    a = simulate(False, size_a, seed, 150)
    b = simulate(False, size_b, seed, 150)
    assert a == b  # exact: same executor, same fold order


@settings(max_examples=8, deadline=None)
@given(batch_size=BATCH_SIZES, seed=st.integers(0, 1000))
def test_udo_fallback_matches_scalar(batch_size, seed):
    scalar = simulate(True, None, seed, 120)
    batched = simulate(True, batch_size, seed, 120)
    assert_rows_close(batched, scalar)
