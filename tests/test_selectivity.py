"""Tests for selectivity estimation and literal generation (Section 3.1)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sps.predicates import FilterFunction
from repro.workload.distributions import (
    StringVocabulary,
    UniformDouble,
    UniformInt,
    ZipfInt,
)
from repro.workload.selectivity import draw_predicate, estimate_selectivity


class TestEstimateSelectivity:
    uniform = UniformDouble(0.0, 1.0)

    @pytest.mark.parametrize(
        "function,literal,expected",
        [
            (FilterFunction.LT, 0.3, 0.3),
            (FilterFunction.LE, 0.3, 0.3),
            (FilterFunction.GT, 0.3, 0.7),
            (FilterFunction.GE, 0.3, 0.7),
            (FilterFunction.EQ, 0.3, 0.0),
            (FilterFunction.NE, 0.3, 1.0),
        ],
    )
    def test_continuous(self, function, literal, expected):
        assert estimate_selectivity(
            function, literal, self.uniform
        ) == pytest.approx(expected)

    def test_discrete_eq(self):
        dist = UniformInt(0, 9)
        assert estimate_selectivity(
            FilterFunction.EQ, 4, dist
        ) == pytest.approx(0.1)
        # LT excludes the literal's point mass; LE includes it.
        lt = estimate_selectivity(FilterFunction.LT, 4, dist)
        le = estimate_selectivity(FilterFunction.LE, 4, dist)
        assert le - lt == pytest.approx(0.1)

    def test_string_functions(self):
        vocab = StringVocabulary(("aa", "ab", "ba", "bb"))
        assert estimate_selectivity(
            FilterFunction.STARTS_WITH, "a", vocab
        ) == pytest.approx(0.5)
        assert estimate_selectivity(
            FilterFunction.ENDS_WITH, "b", vocab
        ) == pytest.approx(0.5)
        assert estimate_selectivity(
            FilterFunction.CONTAINS, "bb", vocab
        ) == pytest.approx(0.25)

    def test_string_function_on_numeric_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_selectivity(
                FilterFunction.CONTAINS, "x", self.uniform
            )


class TestDrawPredicate:
    """The core paper property: generated literals keep 0 < sel < 1."""

    @pytest.mark.parametrize(
        "dist",
        [
            UniformDouble(0.0, 100.0),
            UniformInt(0, 500),
            ZipfInt(80, 1.3),
            StringVocabulary(),
        ],
        ids=["double", "int", "zipf", "string"],
    )
    def test_estimated_selectivity_in_band(self, dist, rng):
        band = (0.15, 0.85)
        for _ in range(30):
            predicate = draw_predicate(dist, 0, rng, band=band)
            estimate = estimate_selectivity(
                predicate.function, predicate.literal, dist
            )
            assert 0.0 < estimate < 1.0
            assert predicate.selectivity_hint == pytest.approx(
                min(max(estimate, 1e-6), 1.0), abs=1e-6
            )

    def test_band_respected_for_numeric(self, rng):
        dist = UniformDouble(0.0, 1.0)
        for _ in range(50):
            predicate = draw_predicate(dist, 0, rng, band=(0.4, 0.6))
            assert 0.35 <= predicate.selectivity_hint <= 0.65

    def test_observed_matches_estimated(self, rng):
        """Empirical pass rate must match the estimate (validity check)."""
        dist = UniformDouble(0.0, 10.0)
        predicate = draw_predicate(dist, 0, rng, band=(0.3, 0.7))
        from repro.sps.tuples import StreamTuple

        passed = sum(
            predicate.evaluate(
                StreamTuple(values=(dist.sample(rng),), event_time=0.0)
            )
            for _ in range(4000)
        )
        assert passed / 4000 == pytest.approx(
            predicate.selectivity_hint, abs=0.05
        )

    def test_field_index_respected(self, rng):
        predicate = draw_predicate(UniformInt(0, 9), 3, rng)
        assert predicate.field_index == 3

    def test_invalid_band(self, rng):
        with pytest.raises(ConfigurationError):
            draw_predicate(UniformInt(0, 9), 0, rng, band=(0.8, 0.2))

    def test_restricted_functions(self, rng):
        predicate = draw_predicate(
            UniformDouble(0, 1),
            0,
            rng,
            functions=[FilterFunction.GT],
        )
        assert predicate.function is FilterFunction.GT

    def test_no_applicable_functions(self, rng):
        with pytest.raises(ConfigurationError):
            draw_predicate(
                UniformDouble(0, 1),
                0,
                rng,
                functions=[FilterFunction.CONTAINS],
            )
