"""Property tests for the determinism sanitizer (ISSUE 6 satellite).

For generated plan configurations, a serial run and a ``workers=2``
parallel run must produce identical RNG-draw ledgers and identical
metrics with the race detector enabled (no false positives on clean
plans), while the seeded shared-RNG mutation is always detected.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import homogeneous_cluster
from repro.common.errors import DeterminismError
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


class DrawingLogic(OperatorLogic):
    """A clean stochastic UDO: draws from its own subtask stream."""

    def process(self, tup, now, port=0):
        if self.ctx.rng.random() < 0.9:
            return [tup]
        return []


def generated_plan(parallelism, num_keys, windowed):
    plan = LogicalPlan("prop")
    plan.add_operator(
        builders.source(
            "src", kv_generator(num_keys), SCHEMA, event_rate=300.0
        )
    )
    plan.add_operator(
        builders.udo(
            "udo", DrawingLogic, parallelism=parallelism,
            output_schema=SCHEMA,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "udo")
    if windowed:
        plan.add_operator(
            builders.window_agg(
                "agg",
                TumblingTimeWindows(0.5),
                AggregateFunction.SUM,
                value_field=1,
                key_field=0,
                parallelism=parallelism,
            )
        )
        plan.connect("udo", "agg")
        plan.connect("agg", "sink")
    else:
        plan.connect("udo", "sink")
    return plan


def make_runner(workers, seed):
    return BenchmarkRunner(
        homogeneous_cluster(num_nodes=2),
        RunnerConfig(
            repeats=2,
            max_tuples_per_source=150,
            max_sim_time=2.0,
            seed=seed,
            workers=workers,
            sanitize=True,
        ),
    )


class TestCleanPlansHaveNoRaces:
    @given(
        parallelism=st.integers(min_value=1, max_value=3),
        num_keys=st.integers(min_value=1, max_value=8),
        windowed=st.booleans(),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=8, deadline=None)
    def test_serial_and_parallel_ledgers_identical(
        self, parallelism, num_keys, windowed, seed
    ):
        plan = generated_plan(parallelism, num_keys, windowed)
        serial = make_runner(1, seed).run_plan(plan)
        parallel = make_runner(2, seed).run_plan(plan)
        for a, b in zip(serial, parallel):
            assert a.extras["race"]["findings"] == []
            assert b.extras["race"]["findings"] == []
            assert (a.extras["race"]["rng_ledger"]
                    == b.extras["race"]["rng_ledger"])
            # The golden results are bit-identical too.
            assert a.latency.mean == b.latency.mean
            assert a.throughput == b.throughput
            assert a.results == b.results


class TestMutationsAreDetected:
    @given(
        parallelism=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=6, deadline=None)
    def test_shared_rng_always_caught(self, parallelism, seed):
        shared = np.random.default_rng(seed)

        class MutantLogic(OperatorLogic):
            def setup(self, ctx):
                super().setup(ctx)
                self._rng = shared

            def process(self, tup, now, port=0):
                _ = self._rng.random()
                return [tup]

        plan = LogicalPlan("mutant")
        plan.add_operator(
            builders.source(
                "src", kv_generator(4), SCHEMA, event_rate=300.0
            )
        )
        plan.add_operator(
            builders.udo(
                "udo", MutantLogic, parallelism=parallelism,
                output_schema=SCHEMA,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "udo")
        plan.connect("udo", "sink")
        try:
            make_runner(1, seed).run_plan(plan)
            raised = False
        except DeterminismError as exc:
            raised = True
            assert exc.code == "DET608"
        assert raised
