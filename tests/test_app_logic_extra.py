"""Additional correctness tests for application operator logic."""

import numpy as np
import pytest

from repro.sps.tuples import StreamTuple


def tup(*values):
    return StreamTuple(values=values, event_time=0.0)


class TestAdAnalytics:
    def test_ctr_emits_every_nth_update(self):
        from repro.apps.ad_analytics import CtrLogic

        logic = CtrLogic(emit_every=3)
        outputs = []
        for _ in range(7):
            outputs.extend(
                logic.process(tup(11, 4, 0.5, 11, 1.0), 0.0)
            )
        assert len(outputs) == 2  # at updates 3 and 6
        campaign, ctr = outputs[0].values
        assert campaign == 4
        assert 0.0 < ctr <= 1.0

    def test_ctr_state_per_campaign(self):
        from repro.apps.ad_analytics import CtrLogic

        logic = CtrLogic(emit_every=2)
        logic.process(tup(1, 7, 0.5, 1, 1.0), 0.0)
        out_a = logic.process(tup(2, 7, 0.5, 2, 1.0), 0.0)
        out_b = logic.process(tup(3, 9, 0.5, 3, 1.0), 0.0)
        assert out_a and out_a[0].values[0] == 7
        assert out_b == []  # campaign 9 has only one update

    def test_rate_split(self):
        from repro.apps.ad_analytics import build

        query = build(event_rate=90_000.0)
        rates = {
            op.op_id: float(op.metadata["event_rate"])
            for op in query.plan.sources()
        }
        assert rates["impressions"] == pytest.approx(60_000.0)
        assert rates["clicks"] == pytest.approx(30_000.0)


class TestTpch:
    def test_revenue_formula(self):
        from repro.apps.tpch import _revenue

        group, revenue = _revenue((2, 30, 10.0, 1000.0, 0.1))
        assert group == 2
        assert revenue == pytest.approx(900.0)

    def test_shipdate_filter_selectivity(self):
        from repro.apps.tpch import _sample_lineitem, build

        query = build(event_rate=1000.0)
        predicate = query.plan.operator(
            "shipdate_filter"
        ).logic_factory().predicate
        rng = np.random.default_rng(0)
        passed = sum(
            predicate.evaluate(tup(*_sample_lineitem(rng)))
            for _ in range(2000)
        )
        assert passed / 2000 == pytest.approx(
            predicate.selectivity_hint, abs=0.05
        )


class TestLogProcessing:
    def test_parse(self):
        from repro.apps.log_processing import _parse

        assert _parse(("GET /index 200 1234",)) == (200, "/index", 1234.0)

    def test_healthz_filtered(self):
        from repro.apps.log_processing import build

        query = build(event_rate=1000.0)
        predicate = query.plan.operator(
            "traffic"
        ).logic_factory().predicate
        assert not predicate.evaluate(tup(200, "/healthz", 1.0))
        assert predicate.evaluate(tup(200, "/index", 1.0))


class TestTaxi:
    def test_route_mapping_deterministic(self):
        from repro.apps.taxi import _to_route

        route_a, fare = _to_route((0.5, 0.5, 0.9, 0.9, 12.0))
        route_b, _ = _to_route((0.5, 0.5, 0.9, 0.9, 50.0))
        assert route_a == route_b
        assert fare == 12.0

    def test_distinct_trips_distinct_routes(self):
        from repro.apps.taxi import _to_route

        near, _ = _to_route((0.1, 0.1, 0.2, 0.2, 5.0))
        far, _ = _to_route((0.8, 0.8, 0.9, 0.9, 5.0))
        assert near != far


class TestWordCountData:
    def test_sentences_nonempty(self):
        from repro.apps.wordcount import _sample_sentence

        rng = np.random.default_rng(1)
        for _ in range(20):
            (sentence,) = _sample_sentence(rng)
            assert 4 <= len(sentence.split()) <= 10

    def test_common_words_more_frequent(self):
        from repro.apps.wordcount import _VOCABULARY

        assert _VOCABULARY.count("the") > _VOCABULARY.count("flink")


class TestSmartGridData:
    def test_plug_key_encodes_house(self):
        from repro.apps.smart_grid import (
            _PLUGS_PER_HOUSE,
            _sample_reading,
        )

        rng = np.random.default_rng(2)
        for _ in range(50):
            plug_key, house, load = _sample_reading(rng)
            assert plug_key // _PLUGS_PER_HOUSE == house
            assert load >= 0.0

    def test_outlier_scorer_flags_hot_plug(self):
        from repro.apps.smart_grid import HouseOutlierLogic

        logic = HouseOutlierLogic(warmup=2)
        for median in (40.0, 42.0, 41.0):
            out = logic.process(tup(3, median), 0.0)
        hot = logic.process(tup(3, 120.0), 0.0)[0]
        house, plug_median, house_median, score = hot.values
        assert house == 3
        assert score > 2.0
        # normal plug scores near 1
        assert abs(out[0].values[3] - 1.0) < 0.2


class TestSentimentWorkScaling:
    def test_longer_tweets_cost_more(self):
        from repro.apps.sentiment import SentimentLogic

        logic = SentimentLogic()
        short = logic.work_units(tup(1, "ok"))
        long = logic.work_units(tup(1, "word " * 40))
        assert long > short
