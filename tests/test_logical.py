"""Unit tests for logical plans: construction, validation, parallelism."""

import pytest

from repro.common.errors import PlanError
from repro.sps import builders
from repro.sps.logical import LogicalPlan, OperatorKind
from repro.sps.partitioning import (
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def make_source(op_id="src", parallelism=1):
    return builders.source(
        op_id, kv_generator(), SCHEMA, event_rate=1000.0,
        parallelism=parallelism,
    )


def make_filter(op_id="flt", parallelism=1):
    return builders.filter_op(
        op_id,
        Predicate(1, FilterFunction.GT, 0.5, selectivity_hint=0.5),
        parallelism=parallelism,
    )


class TestConstruction:
    def test_duplicate_operator_rejected(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        with pytest.raises(PlanError, match="duplicate"):
            plan.add_operator(make_source())

    def test_connect_unknown_operator(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        with pytest.raises(PlanError, match="unknown"):
            plan.connect("src", "nope")

    def test_self_loop_rejected(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        with pytest.raises(PlanError, match="self-loop"):
            plan.connect("src", "src")

    def test_invalid_parallelism(self):
        with pytest.raises(PlanError):
            make_source(parallelism=0)


class TestDefaultPartitioners:
    def test_keyed_agg_gets_hash_with_key_field(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        plan.add_operator(
            builders.window_agg(
                "agg",
                TumblingTimeWindows(0.1),
                AggregateFunction.SUM,
                value_field=1,
                key_field=0,
            )
        )
        edge = plan.connect("src", "agg")
        assert isinstance(edge.partitioner, HashPartitioner)
        assert edge.partitioner.key_field == 0

    def test_join_ports_get_per_side_keys(self):
        plan = LogicalPlan()
        plan.add_operator(make_source("s0"))
        plan.add_operator(make_source("s1"))
        plan.add_operator(
            builders.window_join(
                "join",
                TumblingTimeWindows(0.1),
                left_key_field=0,
                right_key_field=1,
            )
        )
        left = plan.connect("s0", "join", port=0)
        right = plan.connect("s1", "join", port=1)
        assert left.partitioner.key_field == 0
        assert right.partitioner.key_field == 1

    def test_equal_parallelism_stateless_gets_forward(self):
        plan = LogicalPlan()
        plan.add_operator(make_source(parallelism=4))
        plan.add_operator(make_filter(parallelism=4))
        edge = plan.connect("src", "flt")
        assert isinstance(edge.partitioner, ForwardPartitioner)

    def test_unequal_parallelism_gets_rebalance(self):
        plan = LogicalPlan()
        plan.add_operator(make_source(parallelism=2))
        plan.add_operator(make_filter(parallelism=4))
        edge = plan.connect("src", "flt")
        assert isinstance(edge.partitioner, RebalancePartitioner)

    def test_sink_gets_rebalance(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        plan.add_operator(builders.sink())
        edge = plan.connect("src", "sink")
        assert isinstance(edge.partitioner, RebalancePartitioner)


class TestValidation:
    def _valid_plan(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        plan.add_operator(make_filter())
        plan.add_operator(builders.sink())
        plan.connect("src", "flt")
        plan.connect("flt", "sink")
        return plan

    def test_valid_plan_passes(self):
        self._valid_plan().validate()

    def test_no_source_rejected(self):
        plan = LogicalPlan()
        plan.add_operator(make_filter())
        plan.add_operator(builders.sink())
        plan.connect("flt", "sink")
        with pytest.raises(PlanError, match="no source"):
            plan.validate()

    def test_no_sink_rejected(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        with pytest.raises(PlanError, match="no sink"):
            plan.validate()

    def test_dangling_operator_rejected(self):
        plan = self._valid_plan()
        plan.add_operator(make_filter("dangling"))
        with pytest.raises(PlanError, match="no inputs"):
            plan.validate()

    def test_join_needs_both_ports(self):
        plan = LogicalPlan()
        plan.add_operator(make_source("s0"))
        plan.add_operator(
            builders.window_join(
                "join",
                TumblingTimeWindows(0.1),
                left_key_field=0,
                right_key_field=0,
            )
        )
        plan.add_operator(builders.sink())
        plan.connect("s0", "join", port=0)
        plan.connect("join", "sink")
        with pytest.raises(PlanError, match="ports"):
            plan.validate()

    def test_cycle_detected(self):
        plan = LogicalPlan()
        plan.add_operator(make_source())
        plan.add_operator(make_filter("f1"))
        plan.add_operator(make_filter("f2"))
        plan.add_operator(builders.sink())
        plan.connect("src", "f1")
        plan.connect("f1", "f2")
        plan.connect("f2", "f1")  # cycle
        plan.connect("f2", "sink")
        with pytest.raises(PlanError, match="cycle"):
            plan.topological_order()

    def test_topological_order_respects_edges(self):
        plan = self._valid_plan()
        order = plan.topological_order()
        assert order.index("src") < order.index("flt") < order.index(
            "sink"
        )


class TestParallelismMutation:
    def _plan(self):
        plan = LogicalPlan()
        plan.add_operator(make_source(parallelism=2))
        plan.add_operator(make_filter(parallelism=2))
        plan.add_operator(builders.sink())
        plan.connect("src", "flt")  # forward (equal parallelism)
        plan.connect("flt", "sink")
        return plan

    def test_uniform_parallelism_spares_sink(self):
        plan = self._plan()
        plan.set_uniform_parallelism(8)
        degrees = plan.parallelism_degrees()
        assert degrees == {"src": 8, "flt": 8, "sink": 1}

    def test_forward_edges_downgraded_on_mismatch(self):
        plan = self._plan()
        plan.set_parallelism({"flt": 6})
        edge = plan.in_edges("flt")[0]
        assert isinstance(edge.partitioner, RebalancePartitioner)
        plan.validate()

    def test_set_parallelism_unknown_op(self):
        with pytest.raises(PlanError):
            self._plan().set_parallelism({"nope": 2})

    def test_set_parallelism_rejects_zero(self):
        with pytest.raises(PlanError):
            self._plan().set_parallelism({"flt": 0})

    def test_total_subtasks(self):
        plan = self._plan()
        assert plan.total_subtasks() == 5
        plan.set_uniform_parallelism(4)
        assert plan.total_subtasks() == 9

    def test_describe_lists_operators(self):
        text = self._plan().describe()
        assert "src" in text and "flt" in text and "sink" in text

    def test_sources_sinks_helpers(self):
        plan = self._plan()
        assert [op.op_id for op in plan.sources()] == ["src"]
        assert [op.op_id for op in plan.sinks()] == ["sink"]
        assert plan.upstream("flt") == ["src"]
        assert plan.downstream("flt") == ["sink"]
        assert plan.operator("flt").kind is OperatorKind.FILTER
