"""Unit tests for the columnar micro-batch layer.

Covers :class:`~repro.sps.columnar.TupleBatch` construction and
reshaping, the numpy gate, batch-mode configuration validation, and the
advisory BAT7xx batch-friendliness lint rules.
"""

import numpy as np
import pytest

from repro.analysis import analyze_plan
from repro.analysis.rules import RULE_CATALOG
from repro.apps import build_app
from repro.common.errors import ConfigurationError
from repro.core.runner import RunnerConfig
from repro.sps import builders, columnar
from repro.sps.columnar import TupleBatch, require_numpy, sequential_sum
from repro.sps.engine import SimulationConfig, StallInjection
from repro.sps.logical import LogicalPlan
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def make_tuples(n, width=2, ragged=False):
    tuples = []
    for i in range(n):
        values = tuple(float(i * width + j) for j in range(width))
        if ragged and i % 2:
            values = values + (None,)
        tuples.append(
            StreamTuple(
                values=values,
                key=i % 3,
                event_time=0.1 * i,
                size_bytes=24.0,
            )
        )
    return tuples


def make_batch(n=6, **kwargs):
    return TupleBatch.from_tuples(
        make_tuples(n, **kwargs),
        now=np.arange(n, dtype=np.float64),
        seq=np.arange(n, dtype=np.int64),
    )


class TestTupleBatch:
    def test_numeric_fields_become_numeric_columns(self):
        batch = make_batch(5)
        assert batch.columns is not None
        for col in batch.columns:
            assert col.dtype.kind in "bif"
        assert len(batch) == 5

    def test_mixed_field_becomes_object_column(self):
        tuples = [
            StreamTuple(values=(1, "a"), event_time=0.0, size_bytes=8.0),
            StreamTuple(values=(2, None), event_time=0.1, size_bytes=8.0),
        ]
        batch = TupleBatch.from_tuples(
            tuples, now=np.zeros(2), seq=np.arange(2)
        )
        assert batch.columns[1].dtype == object

    def test_ragged_rows_force_row_storage(self):
        batch = make_batch(4, ragged=True)
        assert batch.columns is None
        assert batch.rows is not None and len(batch.rows) == 4

    def test_to_tuples_round_trip(self):
        tuples = make_tuples(6)
        batch = TupleBatch.from_tuples(
            tuples, now=np.zeros(6), seq=np.arange(6)
        )
        back = batch.to_tuples()
        assert [t.values for t in back] == [t.values for t in tuples]
        assert [t.key for t in back] == [t.key for t in tuples]
        assert [t.event_time for t in back] == [
            t.event_time for t in tuples
        ]

    def test_compress_and_take_and_slice_agree(self):
        batch = make_batch(8)
        rows = [t.values for t in batch.to_tuples()]
        mask = batch.columns[0] >= 8.0
        compressed = batch.compress(mask)
        taken = batch.take(np.flatnonzero(mask))
        assert [t.values for t in compressed.to_tuples()] == [
            t.values for t in taken.to_tuples()
        ]
        assert [
            t.values for t in batch.slice(2, 5).to_tuples()
        ] == rows[2:5]

    def test_concat_preserves_rows_and_metadata(self):
        a, b = make_batch(3), make_batch(4)
        merged = TupleBatch.concat([a, b])
        assert len(merged) == 7
        assert [t.values for t in merged.to_tuples()] == [
            t.values for t in a.to_tuples()
        ] + [t.values for t in b.to_tuples()]
        np.testing.assert_array_equal(
            merged.event_time,
            np.concatenate([a.event_time, b.event_time]),
        )

    def test_with_columns_keeps_provenance(self):
        batch = make_batch(4)
        doubled = batch.with_columns(
            (batch.columns[0], batch.columns[1] * 2.0)
        )
        np.testing.assert_array_equal(doubled.event_time, batch.event_time)
        np.testing.assert_array_equal(doubled.seq, batch.seq)
        np.testing.assert_array_equal(
            doubled.columns[1], batch.columns[1] * 2.0
        )

    def test_repeat_rows_expands_provenance(self):
        batch = make_batch(3)
        counts = np.array([2, 0, 3])
        out_col = np.repeat(batch.columns[1], counts)
        out = batch.repeat_rows(counts, (out_col,))
        assert len(out) == 5
        np.testing.assert_array_equal(
            out.event_time, np.repeat(batch.event_time, counts)
        )
        np.testing.assert_array_equal(
            out.key, np.repeat(batch.key, counts)
        )
        assert out.seq is None  # the executor numbers emissions

    def test_sequential_sum_matches_scalar_fold(self):
        values = np.array([1e16, 1.0, -1e16, 0.1, 7.7, 1e-9])
        acc = 0.25
        expected = acc
        for v in values:
            expected += v
        assert sequential_sum(acc, values) == expected
        assert sequential_sum(acc, values[:0]) == acc
        assert sequential_sum(acc, values[:1]) == acc + values[0]


class TestNumpyGate:
    def test_require_numpy_passes_when_present(self):
        require_numpy()

    def test_require_numpy_raises_helpful_error(self, monkeypatch):
        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        with pytest.raises(ConfigurationError, match="numpy"):
            require_numpy()


class TestBatchConfigValidation:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            RunnerConfig(batch_size=0)

    def test_valid_batch_size_accepted(self):
        assert SimulationConfig(batch_size=256).batch_size == 256
        assert RunnerConfig(batch_size=256).batch_size == 256

    def test_batch_mode_rejects_stall_injection(self):
        with pytest.raises(ConfigurationError, match="stall"):
            SimulationConfig(
                batch_size=64,
                stalls=(StallInjection(1.0, "op", 0.5),),
            )

    def test_batch_mode_rejects_backpressure(self):
        with pytest.raises(ConfigurationError, match="backpressure"):
            SimulationConfig(batch_size=64, backpressure_queue_limit=100)


def udo_heavy_plan():
    """source -> udo -> sink: 2 of 3 operators on the scalar fallback."""
    from repro.sps.operators.base import OperatorLogic

    class Custom(OperatorLogic):
        def process(self, tup, now, port=0):
            return [tup]

    plan = LogicalPlan("udo-heavy")
    plan.add_operator(
        builders.source(
            "src",
            lambda rng, now: StreamTuple(
                values=(1.0,), event_time=now, size_bytes=8.0
            ),
            Schema([Field("v", DataType.DOUBLE)]),
            event_rate=1000.0,
        )
    )
    plan.add_operator(builders.udo("custom", Custom))
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "custom")
    plan.connect("custom", "sink")
    return plan


class TestBatchLintRules:
    def test_bat_rules_are_catalogued(self):
        for code in ("BAT701", "BAT702", "BAT703"):
            assert code in RULE_CATALOG
            assert RULE_CATALOG[code].family == "batch"

    def test_bat_rules_are_opt_in(self):
        report = analyze_plan(udo_heavy_plan())
        assert not any(d.code.startswith("BAT") for d in report)

    def test_udo_heavy_plan_warns_on_fallback_density(self):
        report = analyze_plan(udo_heavy_plan(), batch=True)
        assert report.by_code("BAT701")
        assert any(
            d.op_id == "custom" for d in report.by_code("BAT702")
        )
        assert any(d.op_id == "src" for d in report.by_code("BAT703"))

    def test_vectorized_wordcount_is_batch_clean(self):
        app = build_app("WC", event_rate=1000.0)
        report = analyze_plan(app.plan, batch=True)
        assert not any(d.code.startswith("BAT") for d in report)

    def test_builtin_apps_stay_clean_without_batch_rules(self):
        app = build_app("SG", event_rate=1000.0)
        assert analyze_plan(app.plan).is_clean
