"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.common.rng import derive_seed
from repro.ml.qerror import q_error, q_errors
from repro.sps.partitioning import (
    BroadcastPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)
from repro.sps.tuples import StreamTuple
from repro.sps.windows import (
    AggregateFunction,
    SlidingTimeWindows,
    TumblingTimeWindows,
)
from repro.workload.distributions import (
    GaussianDouble,
    UniformDouble,
    UniformInt,
    ZipfInt,
)
from repro.workload.selectivity import draw_predicate, estimate_selectivity

finite_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestWindowProperties:
    @given(
        duration=st.floats(min_value=0.01, max_value=10.0),
        timestamp=st.floats(min_value=0.0, max_value=1e4),
    )
    @settings(max_examples=200)
    def test_tumbling_window_contains_timestamp(self, duration, timestamp):
        windows = TumblingTimeWindows(duration).assign(timestamp)
        assert len(windows) == 1
        assert windows[0].contains(timestamp)
        assert windows[0].duration == pytest.approx(duration)

    @given(
        duration=st.floats(min_value=0.1, max_value=5.0),
        ratio=st.sampled_from([0.25, 0.5, 1.0]),
        timestamp=st.floats(min_value=0.0, max_value=1e3),
    )
    @settings(max_examples=200)
    def test_sliding_windows_all_contain_timestamp(
        self, duration, ratio, timestamp
    ):
        assigner = SlidingTimeWindows(duration, duration * ratio)
        windows = assigner.assign(timestamp)
        # Boundary timestamps may fall in one window more or fewer.
        assert abs(len(windows) - round(1.0 / ratio)) <= 1
        assert windows
        for window in windows:
            assert window.contains(timestamp)
        starts = [w.start for w in windows]
        assert starts == sorted(starts)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1,
            max_size=50,
        )
    )
    def test_aggregates_bounded_by_extremes(self, values):
        low = AggregateFunction.MIN.apply(values)
        high = AggregateFunction.MAX.apply(values)
        mean = AggregateFunction.AVG.apply(values)
        # Tolerance: float summation can overshoot the extremes by ulps.
        eps = 1e-9 * max(abs(low), abs(high), 1.0)
        assert low - eps <= mean <= high + eps
        assert AggregateFunction.COUNT.apply(values) == len(values)


class TestPartitioningProperties:
    @given(
        keys=st.lists(
            st.one_of(st.integers(), st.text(max_size=8)),
            min_size=1,
            max_size=50,
        ),
        consumers=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100)
    def test_hash_targets_valid_and_stable(self, keys, consumers):
        partitioner = HashPartitioner()
        for key in keys:
            tup = StreamTuple(values=(key,), event_time=0.0, key=key)
            first = partitioner.select(tup, consumers)
            second = partitioner.clone().select(tup, consumers)
            assert first == second
            assert 0 <= first[0] < consumers

    @given(
        count=st.integers(min_value=1, max_value=200),
        consumers=st.integers(min_value=1, max_value=16),
    )
    def test_rebalance_is_balanced(self, count, consumers):
        partitioner = RebalancePartitioner()
        loads = [0] * consumers
        for i in range(count):
            tup = StreamTuple(values=(i,), event_time=0.0)
            loads[partitioner.select(tup, consumers)[0]] += 1
        assert max(loads) - min(loads) <= 1

    @given(consumers=st.integers(min_value=1, max_value=32))
    def test_broadcast_covers_everyone(self, consumers):
        tup = StreamTuple(values=(1,), event_time=0.0)
        assert BroadcastPartitioner().select(tup, consumers) == list(
            range(consumers)
        )


class TestQErrorProperties:
    @given(true=finite_floats, predicted=finite_floats)
    def test_q_error_at_least_one_and_symmetric(self, true, predicted):
        value = q_error(true, predicted)
        assert value >= 1.0
        assert value == pytest.approx(q_error(predicted, true))

    @given(cost=finite_floats)
    def test_perfect_prediction_is_one(self, cost):
        assert q_error(cost, cost) == pytest.approx(1.0)

    @given(
        true=st.lists(finite_floats, min_size=1, max_size=20),
        scale=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_scaling_error_monotone(self, true, scale):
        arr = np.array(true)
        exact = q_errors(arr, arr)
        scaled = q_errors(arr, arr * scale)
        assert np.all(scaled >= exact - 1e-12)


class TestDistributionProperties:
    @st.composite
    def distributions(draw):
        kind = draw(st.sampled_from(["uniform_int", "uniform_double",
                                     "gaussian", "zipf"]))
        if kind == "uniform_int":
            lo = draw(st.integers(min_value=-1000, max_value=1000))
            width = draw(st.integers(min_value=1, max_value=2000))
            return UniformInt(lo, lo + width)
        if kind == "uniform_double":
            lo = draw(st.floats(min_value=-1e3, max_value=1e3))
            width = draw(st.floats(min_value=0.1, max_value=1e3))
            return UniformDouble(lo, lo + width)
        if kind == "gaussian":
            return GaussianDouble(
                draw(st.floats(min_value=-100, max_value=100)),
                draw(st.floats(min_value=0.1, max_value=50)),
            )
        return ZipfInt(
            draw(st.integers(min_value=2, max_value=500)),
            draw(st.floats(min_value=0.5, max_value=2.5)),
        )

    @given(dist=distributions(), q=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=150)
    def test_quantile_inverts_cdf(self, dist, q):
        value = dist.quantile(q)
        assert dist.cdf(value) >= q - 1e-6

    @given(dist=distributions(), data=st.data())
    @settings(max_examples=100)
    def test_cdf_monotone(self, dist, data):
        a = data.draw(st.floats(min_value=-2e3, max_value=2e3))
        b = data.draw(st.floats(min_value=-2e3, max_value=2e3))
        assume(a <= b)
        assert dist.cdf(a) <= dist.cdf(b) + 1e-12

    @given(dist=distributions(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_samples_respect_cdf_support(self, dist, seed):
        rng = np.random.default_rng(seed)
        value = dist.sample(rng)
        assert 0.0 <= dist.cdf(value) <= 1.0
        assert dist.cdf(value) > 0.0 or dist.point_mass(value) >= 0.0


class TestSelectivityProperties:
    @given(
        seed=st.integers(0, 2**32 - 1),
        lo=st.floats(min_value=0.05, max_value=0.4),
        width=st.floats(min_value=0.1, max_value=0.5),
    )
    @settings(max_examples=100)
    def test_drawn_predicates_always_valid(self, seed, lo, width):
        """Core Section 3.1 property: generated filters never have

        selectivity 0 or 1 (data always partially passes)."""
        rng = np.random.default_rng(seed)
        dist = UniformDouble(0.0, 100.0)
        band = (lo, min(lo + width, 0.95))
        predicate = draw_predicate(dist, 0, rng, band=band)
        estimate = estimate_selectivity(
            predicate.function, predicate.literal, dist
        )
        assert 0.0 < estimate < 1.0


class TestRngProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**62),
        name=st.text(min_size=1, max_size=20),
    )
    def test_derive_seed_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**63

    @given(
        seed=st.integers(min_value=0, max_value=2**62),
        a=st.text(min_size=1, max_size=10),
        b=st.text(min_size=1, max_size=10),
    )
    def test_distinct_names_distinct_seeds(self, seed, a, b):
        assume(a != b)
        assert derive_seed(seed, a) != derive_seed(seed, b)
