"""Tests for the multiprocessing fan-out in :mod:`repro.core.parallel`."""

from __future__ import annotations

import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError, SimulationError
from repro.core.parallel import ParallelRunner, default_workers, parallel_map
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.sps.metrics import aggregate_runs


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 3:
        raise SimulationError("worker failed on item 3")
    return x


class TestParallelRunnerMap:
    def test_serial_preserves_order(self):
        runner = ParallelRunner(workers=1)
        assert runner.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_parallel_preserves_order(self):
        runner = ParallelRunner(workers=4)
        assert runner.map(_square, range(20)) == [
            x * x for x in range(20)
        ]

    def test_empty_items(self):
        assert ParallelRunner(workers=4).map(_square, []) == []

    def test_explicit_chunk_size(self):
        runner = ParallelRunner(workers=2, chunk_size=3)
        assert runner.map(_square, range(10)) == [
            x * x for x in range(10)
        ]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(workers=0)
        with pytest.raises(ConfigurationError):
            ParallelRunner(workers=-2)

    def test_worker_exception_surfaces_serial(self):
        with pytest.raises(SimulationError, match="item 3"):
            ParallelRunner(workers=1).map(_boom, range(6))

    def test_worker_exception_surfaces_parallel(self):
        # The pool must re-raise the worker's exception in the parent
        # instead of hanging or returning a partial result list.
        with pytest.raises(SimulationError, match="item 3"):
            ParallelRunner(workers=4).map(_boom, range(6))

    def test_parallel_map_convenience(self):
        assert parallel_map(_square, range(5), workers=2) == [
            0,
            1,
            4,
            9,
            16,
        ]

    def test_default_workers_at_least_one(self):
        assert default_workers() >= 1


class TestSerialNeverTouchesForkMachinery:
    """workers=1 is the in-process reference path: it must complete
    without consulting multiprocessing, the fork-availability probe, or
    the module-global task slot (the regression was a workers=1 map
    routed through pool setup)."""

    def test_workers_one_bypasses_fork_entirely(self, monkeypatch):
        import repro.core.parallel as parallel_module

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "workers=1 must not touch fork machinery"
            )

        monkeypatch.setattr(
            parallel_module.multiprocessing, "get_context", forbidden
        )
        monkeypatch.setattr(
            parallel_module.multiprocessing,
            "get_all_start_methods",
            forbidden,
        )
        monkeypatch.setattr(
            parallel_module.ParallelRunner, "_fork_available", forbidden
        )
        runner = ParallelRunner(workers=1)
        assert runner.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_workers_one_leaves_task_slot_alone(self, monkeypatch):
        import repro.core.parallel as parallel_module

        class Untouchable(list):
            def __setitem__(self, key, value):  # pragma: no cover
                raise AssertionError(
                    "workers=1 must not write the shared task slot"
                )

        monkeypatch.setattr(
            parallel_module, "_TASK", Untouchable([None, None])
        )
        assert ParallelRunner(workers=1).map(_square, [2, 3]) == [4, 9]

    def test_workers_one_accepts_a_lazy_generator(self, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(
            parallel_module.ParallelRunner,
            "_fork_available",
            lambda self=None: (_ for _ in ()).throw(AssertionError()),
        )
        result = ParallelRunner(workers=1).map(
            _square, (x for x in range(4))
        )
        assert result == [0, 1, 4, 9]


class TestRunnerFanOut:
    def _measure(self, workers: int) -> dict:
        cluster = homogeneous_cluster("m510", 4)
        runner = BenchmarkRunner(
            cluster,
            RunnerConfig(
                repeats=4,
                dilation=25.0,
                max_tuples_per_source=400,
                max_sim_time=2.0,
                seed=23,
                workers=workers,
            ),
        )
        query = runner.prepare_app("WC", 2)
        return aggregate_runs(runner.run_plan(query.plan))

    def test_workers_do_not_change_results(self):
        # Per-repeat seeds are derived from (seed, repeat), so the fan
        # out must aggregate to exactly the serial numbers.
        assert self._measure(workers=1) == self._measure(workers=4)

    def test_runner_config_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            RunnerConfig(workers=0)
