"""Tests for event-time windowing with watermarks."""

import numpy as np
import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorContext
from repro.sps.operators.event_aggregate import (
    EventTimeWindowAggregateLogic,
)
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import (
    AggregateFunction,
    SlidingTimeWindows,
    TumblingCountWindows,
    TumblingTimeWindows,
)
from tests.conftest import kv_generator


def ctx():
    return OperatorContext(
        op_id="op", subtask_index=0, parallelism=1,
        rng=np.random.default_rng(0),
    )


def tup(key, value, event_time):
    return StreamTuple(
        values=(key, value), event_time=event_time,
        origin_time=event_time,
    )


def make_logic(**kwargs):
    defaults = dict(
        assigner=TumblingTimeWindows(1.0),
        function=AggregateFunction.SUM,
        value_field=1,
        key_field=0,
        max_out_of_orderness=0.1,
    )
    defaults.update(kwargs)
    logic = EventTimeWindowAggregateLogic(**defaults)
    logic.setup(ctx())
    return logic


class TestWatermark:
    def test_watermark_trails_max_event_time(self):
        logic = make_logic()
        logic.process(tup("a", 1.0, event_time=0.5), now=0.6)
        assert logic.watermark == pytest.approx(0.4)

    def test_window_fires_on_watermark_not_arrival(self):
        logic = make_logic()
        # Arrival time is way past the window end, but event time is not:
        # the window must NOT fire yet.
        out = logic.process(tup("a", 1.0, event_time=0.5), now=5.0)
        assert out == []
        # An event past 1.1 pushes the watermark past the window end.
        out = logic.process(tup("a", 2.0, event_time=1.2), now=5.1)
        assert len(out) == 1
        assert out[0].values == ("a", 1.0)

    def test_out_of_order_tuple_still_counted(self):
        logic = make_logic()
        logic.process(tup("a", 1.0, event_time=0.8), now=1.0)
        # Late-ish but within the bound: watermark is 0.7, window [0,1)
        # not fired yet, so the 0.3-timestamped tuple still counts.
        logic.process(tup("a", 2.0, event_time=0.3), now=1.1)
        out = logic.process(tup("a", 9.0, event_time=1.5), now=1.2)
        assert out[0].values == ("a", 3.0)
        assert logic.late_dropped == 0

    def test_late_tuple_dropped_and_counted(self):
        logic = make_logic()
        logic.process(tup("a", 1.0, event_time=0.5), now=0.5)
        logic.process(tup("a", 1.0, event_time=2.0), now=2.0)  # fires [0,1)
        before = logic.windows_fired
        out = logic.process(tup("a", 99.0, event_time=0.2), now=2.1)
        assert out == []
        assert logic.late_dropped == 1
        assert logic.windows_fired == before

    def test_allowed_lateness_rescues_tuples(self):
        strict = make_logic(allowed_lateness=0.0)
        lenient = make_logic(allowed_lateness=5.0)
        for logic in (strict, lenient):
            logic.process(tup("a", 1.0, event_time=0.5), now=0.5)
            logic.process(tup("a", 1.0, event_time=2.0), now=2.0)
            logic.process(tup("a", 9.0, event_time=0.4), now=2.1)
        assert strict.late_dropped == 1
        assert lenient.late_dropped == 0

    def test_idle_advancement_via_timer(self):
        logic = make_logic()
        logic.process(tup("a", 1.0, event_time=0.5), now=0.5)
        # No further input; a much later timer advances the watermark
        # and fires the pending window.
        out = logic.on_time(now=10.0)
        assert len(out) == 1
        assert out[0].values == ("a", 1.0)

    def test_flush_emits_pending(self):
        logic = make_logic()
        logic.process(tup("a", 4.0, event_time=0.5), now=0.5)
        out = logic.flush(now=0.6)
        assert out[0].values == ("a", 4.0)
        assert logic.flush(now=0.7) == []


class TestSlidingEventTime:
    def test_value_in_overlapping_windows(self):
        logic = make_logic(assigner=SlidingTimeWindows(1.0, 0.5))
        logic.process(tup("a", 1.0, event_time=0.75), now=0.75)
        outs = logic.process(tup("a", 0.0, event_time=3.0), now=3.0)
        # windows [0,1) and [0.5,1.5) both contained the tuple
        sums = sorted(o.values[1] for o in outs if o.values[1] > 0)
        assert sums == [1.0, 1.0]


class TestValidation:
    def test_count_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            EventTimeWindowAggregateLogic(
                TumblingCountWindows(10),
                AggregateFunction.SUM,
                value_field=1,
            )

    def test_negative_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            make_logic(max_out_of_orderness=-1.0)
        with pytest.raises(ConfigurationError):
            make_logic(allowed_lateness=-0.5)


class TestEndToEndEventTime:
    def _run(self, max_out_of_orderness):
        schema = Schema(
            [Field("k", DataType.INT), Field("v", DataType.DOUBLE)]
        )
        plan = LogicalPlan("event-time")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), schema, event_rate=2000.0
            )
        )
        plan.add_operator(
            builders.event_window_agg(
                "agg",
                TumblingTimeWindows(0.1),
                AggregateFunction.COUNT,
                value_field=1,
                key_field=0,
                max_out_of_orderness=max_out_of_orderness,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "agg")
        plan.connect("agg", "sink")
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=2),
            config=SimulationConfig(
                max_tuples_per_source=2000, max_sim_time=4.0,
                warmup_fraction=0.0,
            ),
            rng_factory=RngFactory(5),
        )
        metrics = engine.run()
        agg_logics = [
            rt.logic
            for rt in engine._runtimes
            if isinstance(rt.logic, EventTimeWindowAggregateLogic)
        ]
        late = sum(logic.late_dropped for logic in agg_logics)
        return metrics, late

    def test_produces_results(self):
        metrics, _ = self._run(max_out_of_orderness=0.05)
        assert metrics.results > 0

    def test_no_late_drops_with_generous_bound(self):
        # Queueing delay in this unloaded plan is far below 50ms.
        _, late = self._run(max_out_of_orderness=0.05)
        assert late == 0

    def test_total_counts_conserved(self):
        """Every non-late source tuple lands in exactly one tumbling

        window: the COUNT sums must add up to source events."""
        schema = Schema(
            [Field("k", DataType.INT), Field("v", DataType.DOUBLE)]
        )
        plan = LogicalPlan("conservation")
        plan.add_operator(
            builders.source(
                "src", kv_generator(num_keys=4), schema,
                event_rate=2000.0,
            )
        )
        plan.add_operator(
            builders.event_window_agg(
                "agg",
                TumblingTimeWindows(0.1),
                AggregateFunction.COUNT,
                value_field=1,
                key_field=0,
                max_out_of_orderness=0.2,
            )
        )
        sink = builders.sink("sink", keep_values=True)
        plan.add_operator(sink)
        plan.connect("src", "agg")
        plan.connect("agg", "sink")
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=2),
            config=SimulationConfig(
                max_tuples_per_source=1500, max_sim_time=4.0,
                warmup_fraction=0.0, keep_sink_values=True,
            ),
            rng_factory=RngFactory(6),
        )
        metrics = engine.run()
        from repro.sps.operators.sink import SinkLogic

        sink_logics = [
            rt.logic
            for rt in engine._runtimes
            if isinstance(rt.logic, SinkLogic)
        ]
        counted = sum(
            value
            for logic in sink_logics
            for _, value in logic.results
        )
        assert counted == metrics.source_events
