"""Tests for the analytic estimator and the metrics layer."""

import numpy as np
import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import SimulationError
from repro.sps import builders
from repro.sps.analytic import AnalyticEstimator
from repro.sps.logical import LogicalPlan
from repro.sps.metrics import LatencyStats, RunMetrics, aggregate_runs
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def pipeline_plan(rate, filter_p=1, agg_p=1, window_s=0.1):
    plan = LogicalPlan("pipe")
    plan.add_operator(
        builders.source("src", kv_generator(), SCHEMA, event_rate=rate)
    )
    plan.add_operator(
        builders.filter_op(
            "flt",
            Predicate(1, FilterFunction.GT, 0.5, selectivity_hint=0.5),
            parallelism=filter_p,
        )
    )
    agg = builders.window_agg(
        "agg",
        TumblingTimeWindows(window_s),
        AggregateFunction.SUM,
        value_field=1,
        key_field=0,
        parallelism=agg_p,
    )
    agg.metadata["key_cardinality"] = 10
    plan.add_operator(agg)
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "flt")
    plan.connect("flt", "agg")
    plan.connect("agg", "sink")
    return plan


class TestAnalyticEstimator:
    def setup_method(self):
        self.cluster = homogeneous_cluster(num_nodes=4)
        self.estimator = AnalyticEstimator(self.cluster)

    def test_latency_positive_and_includes_window(self):
        estimate = self.estimator.estimate(pipeline_plan(1000, window_s=0.2))
        assert estimate.latency_s > 0.2  # window residence dominates

    def test_latency_increases_with_rate(self):
        low = self.estimator.estimate(pipeline_plan(1_000))
        high = self.estimator.estimate(pipeline_plan(400_000))
        assert high.latency_s > low.latency_s

    def test_saturation_detected_in_bottleneck(self):
        estimate = self.estimator.estimate(pipeline_plan(2_000_000))
        assert estimate.bottleneck_utilization > 1.0
        assert estimate.bottleneck_op in ("flt", "agg", "src", "sink")

    def test_parallelism_reduces_saturated_latency(self):
        slow = self.estimator.estimate(
            pipeline_plan(800_000, filter_p=1, agg_p=1)
        )
        fast = self.estimator.estimate(
            pipeline_plan(800_000, filter_p=8, agg_p=8)
        )
        assert fast.latency_s < slow.latency_s

    def test_utilization_per_operator(self):
        estimate = self.estimator.estimate(pipeline_plan(10_000))
        assert set(estimate.operator_utilization) == {
            "src", "flt", "agg", "sink",
        }

    def test_throughput_is_sink_rate(self):
        estimate = self.estimator.estimate(pipeline_plan(10_000))
        # sink input = rate * filter selectivity * agg selectivity
        assert 0 < estimate.throughput < 10_000

    def test_noisy_latency_close_to_estimate(self):
        plan = pipeline_plan(10_000)
        base = self.estimator.estimate(plan).latency_s
        rng = np.random.default_rng(0)
        samples = [
            self.estimator.noisy_latency(plan, rng, cv=0.05)
            for _ in range(200)
        ]
        assert np.median(samples) == pytest.approx(base, rel=0.1)
        assert np.std(samples) > 0

    def test_latency_ms_property(self):
        estimate = self.estimator.estimate(pipeline_plan(1_000))
        assert estimate.latency_ms == pytest.approx(
            estimate.latency_s * 1e3
        )


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.p50 == pytest.approx(3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError, match="no latency samples"):
            LatencyStats.from_samples([])

    def test_to_dict_roundtrip_fields(self):
        stats = LatencyStats.from_samples([1.0, 2.0])
        d = stats.to_dict()
        assert d["count"] == 2
        assert set(d) == {"count", "mean", "p50", "p95", "p99", "min",
                          "max"}


class TestAggregateRuns:
    def _metrics(self, p50):
        return RunMetrics(
            latency=LatencyStats(
                count=10, mean=p50, p50=p50, p95=p50, p99=p50,
                minimum=p50, maximum=p50,
            ),
            throughput=100.0,
            results=10,
            source_events=10,
            sim_duration=1.0,
        )

    def test_mean_of_medians(self):
        aggregate = aggregate_runs(
            [self._metrics(0.1), self._metrics(0.2), self._metrics(0.3)]
        )
        assert aggregate["mean_median_latency_s"] == pytest.approx(0.2)
        assert aggregate["mean_median_latency_ms"] == pytest.approx(200.0)
        assert aggregate["runs"] == 3

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_runs([])

    def test_median_latency_ms_property(self):
        assert self._metrics(0.25).median_latency_ms == pytest.approx(250)
