"""Tests for recorded-trace replay (the Kafka producer stand-in)."""

import numpy as np
import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.types import DataType, Field, Schema
from repro.storage import DocumentStore
from repro.workload.replay import (
    RecordedTrace,
    diurnal_rate_profile,
    replay_generator,
)

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])
ROWS = [(1, 0.1), (2, 0.2), (3, 0.3)]


class TestRecordedTrace:
    def test_basic_construction(self):
        trace = RecordedTrace("t", SCHEMA, ROWS)
        assert len(trace) == 3
        assert trace.rows[1] == (2, 0.2)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="values"):
            RecordedTrace("t", SCHEMA, [(1, 2, 3)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RecordedTrace("t", SCHEMA, [])

    def test_record_from_sampler(self):
        rng = np.random.default_rng(0)
        trace = RecordedTrace.record(
            "sampled",
            SCHEMA,
            lambda r: (int(r.integers(5)), float(r.random())),
            count=40,
            rng=rng,
        )
        assert len(trace) == 40

    def test_store_roundtrip(self):
        store = DocumentStore()
        RecordedTrace("grid", SCHEMA, ROWS).save(store["traces"])
        loaded = RecordedTrace.load(store["traces"], "grid")
        assert loaded.rows == [tuple(r) for r in ROWS]
        assert loaded.schema == SCHEMA

    def test_load_missing(self):
        store = DocumentStore()
        with pytest.raises(ConfigurationError, match="no recorded"):
            RecordedTrace.load(store["traces"], "ghost")


class TestReplayGenerator:
    def test_cycles_infinitely(self):
        trace = RecordedTrace("t", SCHEMA, ROWS)
        generate = replay_generator(trace)
        rng = np.random.default_rng(7)
        values = [generate(rng, float(i)).values for i in range(7)]
        # After the random start offset, consecutive reads walk the
        # trace in order, wrapping around.
        start = ROWS.index(values[0])
        expected = [
            tuple(ROWS[(start + i) % len(ROWS)]) for i in range(7)
        ]
        assert values == expected

    def test_distinct_instances_get_distinct_offsets(self):
        trace = RecordedTrace("t", SCHEMA, list(range_rows(50)))
        starts = set()
        for seed in range(8):
            generate = replay_generator(trace)
            rng = np.random.default_rng(seed)
            starts.add(generate(rng, 0.0).values[0])
        assert len(starts) > 3

    def test_end_to_end_replay_source(self):
        trace = RecordedTrace("t", SCHEMA, list(range_rows(10)))
        plan = LogicalPlan("replay")
        plan.add_operator(
            builders.source(
                "src",
                replay_generator(trace),
                SCHEMA,
                event_rate=1000.0,
                parallelism=2,
            )
        )
        plan.add_operator(builders.sink("sink", keep_values=True))
        plan.connect("src", "sink")
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=2),
            config=SimulationConfig(
                max_tuples_per_source=200,
                max_sim_time=2.0,
                warmup_fraction=0.0,
                keep_sink_values=True,
            ),
            rng_factory=RngFactory(3),
        )
        metrics = engine.run()
        assert metrics.results == 200
        from repro.sps.operators.sink import SinkLogic

        seen_keys = {
            values[0]
            for rt in engine._runtimes
            if isinstance(rt.logic, SinkLogic)
            for values in rt.logic.results
        }
        # 200 reads over a 10-row trace: every row replayed many times.
        assert seen_keys == set(range(10))


def range_rows(n):
    for i in range(n):
        yield (i, float(i) / 10.0)


class TestProfileArrival:
    def _run(self, rate_profile, tuples=600):
        plan = LogicalPlan("profile-arrivals")
        source = builders.source(
            "src",
            replay_generator(RecordedTrace("t", SCHEMA, ROWS)),
            SCHEMA,
            event_rate=1000.0,
            arrival="profile",
        )
        source.metadata["rate_profile"] = rate_profile
        plan.add_operator(source)
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "sink")
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=2),
            config=SimulationConfig(
                max_tuples_per_source=tuples,
                max_sim_time=30.0,
                warmup_fraction=0.0,
            ),
            rng_factory=RngFactory(8),
        )
        return engine.run()

    def test_profile_modulates_rate(self):
        # A profile twice the flat rate should finish the budget in
        # roughly half the simulated time.
        fast = self._run(lambda now: 2000.0)
        slow = self._run(lambda now: 500.0)
        assert fast.sim_duration < slow.sim_duration / 2.5

    def test_diurnal_profile_runs_end_to_end(self):
        metrics = self._run(
            diurnal_rate_profile(1000.0, 2.0, day_length_s=0.5)
        )
        assert metrics.results == 600

    def test_missing_profile_rejected(self):
        plan = LogicalPlan("missing-profile")
        source = builders.source(
            "src",
            replay_generator(RecordedTrace("t", SCHEMA, ROWS)),
            SCHEMA,
            event_rate=1000.0,
            arrival="profile",
        )
        plan.add_operator(source)
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "sink")
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=1),
            config=SimulationConfig(max_tuples_per_source=10),
            rng_factory=RngFactory(1),
        )
        with pytest.raises(ConfigurationError, match="rate_profile"):
            engine.run()


class TestDiurnalProfile:
    def test_swings_between_bounds(self):
        rate_at = diurnal_rate_profile(
            1000.0, peak_factor=2.0, day_length_s=10.0
        )
        samples = [rate_at(t / 10.0) for t in range(100)]
        assert min(samples) == pytest.approx(500.0, rel=0.05)
        assert max(samples) == pytest.approx(2000.0, rel=0.05)

    def test_periodic(self):
        rate_at = diurnal_rate_profile(100.0, day_length_s=5.0)
        assert rate_at(1.0) == pytest.approx(rate_at(6.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_rate_profile(0.0)
        with pytest.raises(ConfigurationError):
            diurnal_rate_profile(10.0, peak_factor=0.5)
        with pytest.raises(ConfigurationError):
            diurnal_rate_profile(10.0, day_length_s=0.0)
