"""Tests for the core facade: runner, controller, run records."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core import BenchmarkRunner, PDSPBench, RunnerConfig, RunRecord
from repro.workload import QueryStructure


@pytest.fixture
def runner(small_cluster, quick_runner_config):
    return BenchmarkRunner(small_cluster, quick_runner_config)


class TestRunnerConfig:
    def test_defaults_match_paper_protocol(self):
        config = RunnerConfig()
        assert config.repeats == 3  # paper: three runs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunnerConfig(repeats=0)
        with pytest.raises(ConfigurationError):
            RunnerConfig(dilation=0.0)


class TestBenchmarkRunner:
    def test_prepare_app_dilates(self, runner):
        query = runner.prepare_app("WC", parallelism=2,
                                   event_rate=100_000.0)
        source = query.plan.sources()[0]
        assert float(source.metadata["event_rate"]) == pytest.approx(
            100_000.0 / runner.config.dilation
        )
        assert query.params["parallelism"] == 2
        degrees = query.plan.parallelism_degrees()
        assert degrees["tokenize"] == 2
        assert degrees["sink"] == 1

    def test_run_plan_repeats(self, small_cluster):
        config = RunnerConfig(
            repeats=3, dilation=20.0, max_tuples_per_source=600,
            max_sim_time=2.0,
        )
        runner = BenchmarkRunner(small_cluster, config)
        query = runner.prepare_app("WC", 2)
        runs = runner.run_plan(query.plan)
        assert len(runs) == 3
        medians = {run.latency.p50 for run in runs}
        assert len(medians) == 3  # independent randomness per repeat

    def test_measure_aggregates(self, runner):
        result = runner.measure_app("LR", parallelism=2)
        assert result["mean_median_latency_ms"] > 0
        assert result["runs"] == runner.config.repeats
        assert result["parallelism"] == 2.0


class TestPDSPBench:
    @pytest.fixture
    def bench(self, quick_runner_config):
        return PDSPBench.homogeneous(
            num_nodes=4, runner_config=quick_runner_config
        )

    def test_list_applications(self, bench):
        apps = bench.list_applications()
        assert len(apps) == 14
        assert {"abbrev", "name", "area", "uses_udo",
                "data_intensity"} <= set(apps[0])

    def test_run_application_persists(self, bench):
        record = bench.run_application("TPCH", parallelism=2)
        assert record.workload_kind == "real-world"
        assert record.metrics["mean_median_latency_ms"] > 0
        assert bench.store["runs"].count() == 1
        stored = bench.stored_runs()[0]
        assert stored.workload_name == "TPCH"
        assert stored.degrees["pricing_summary"] == 2

    def test_run_synthetic_persists(self, bench):
        record = bench.run_synthetic(
            QueryStructure.LINEAR, parallelism=2, event_rate=50_000.0
        )
        assert record.workload_kind == "synthetic"
        assert record.params["parallelism"] == 2
        assert bench.store["runs"].count() == 1

    def test_build_corpus_and_train(self, bench):
        corpus = bench.build_corpus(
            count=40,
            structures=[
                QueryStructure.LINEAR, QueryStructure.TWO_WAY_JOIN,
            ],
        )
        assert len(corpus) == 40
        assert bench.store["corpus"].count() == 40
        reloaded = bench.load_corpus()
        assert len(reloaded) == 40
        from repro.ml.models import LinearRegressionModel

        bench.ml_manager.models = [LinearRegressionModel()]
        reports = bench.train_models(corpus)
        assert "LR" in reports
        assert bench.store["model_reports"].count() == 1

    def test_heterogeneous_builder(self):
        bench = PDSPBench.heterogeneous(num_nodes=4)
        assert bench.cluster.is_heterogeneous

    def test_invalid_corpus_count(self, bench):
        with pytest.raises(ConfigurationError):
            bench.build_corpus(count=0)


class TestRunRecord:
    def test_document_roundtrip(self, small_cluster, quick_runner_config):
        runner = BenchmarkRunner(small_cluster, quick_runner_config)
        query = runner.prepare_app("WC", 2)
        metrics = runner.measure(query.plan)
        record = RunRecord.from_run(
            plan=query.plan,
            cluster=small_cluster,
            metrics=metrics,
            workload_kind="real-world",
            event_rate=100_000.0,
            params={"note": "test"},
        )
        restored = RunRecord.from_document(record.to_document())
        assert restored.workload_name == "WC"
        assert restored.degrees == record.degrees
        assert restored.metrics == record.metrics
        assert restored.params["note"] == "test"
