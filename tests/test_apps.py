"""Tests for the application suite (Table 2): registry + every dataflow."""

import pytest

from repro.apps import APP_INFOS, REGISTRY, app_info, build_app
from repro.apps.base import AppInfo, DataIntensity
from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import OperatorKind


class TestRegistry:
    def test_fourteen_real_world_apps(self):
        """Table 1 claims 14 real-world applications."""
        assert len(REGISTRY) == 14
        assert len(APP_INFOS) == 14

    def test_expected_abbreviations(self):
        expected = {
            "WC", "MO", "LR", "SA", "SG", "SD", "TPCH", "AD", "CA",
            "TM", "LP", "TQ", "FD", "BI",
        }
        assert set(REGISTRY) == expected

    def test_paper_intensity_grouping(self):
        """The paper groups SA/SG/SD as data-intensive, WC/LR as not."""
        for abbrev in ("SA", "SG", "SD", "FD"):
            assert APP_INFOS[abbrev].data_intensity == DataIntensity.HIGH
        for abbrev in ("WC", "LR", "TPCH", "LP"):
            assert APP_INFOS[abbrev].data_intensity == DataIntensity.LOW

    def test_udo_flags(self):
        assert not APP_INFOS["WC"].uses_udo
        assert not APP_INFOS["TPCH"].uses_udo
        assert APP_INFOS["AD"].uses_udo
        assert APP_INFOS["SG"].uses_udo

    def test_unknown_app(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            build_app("XX")
        with pytest.raises(ConfigurationError):
            app_info("XX")

    def test_info_validation(self):
        with pytest.raises(ConfigurationError):
            AppInfo("X", "x", "area", "desc", False, "extreme")


class TestEveryAppBuildsAndRuns:
    @pytest.mark.parametrize("abbrev", sorted(REGISTRY))
    def test_plan_is_valid(self, abbrev):
        query = build_app(abbrev, event_rate=1000.0)
        query.plan.validate()
        assert query.info.abbrev == abbrev
        assert query.plan.sources()
        assert query.plan.sinks()

    @pytest.mark.parametrize("abbrev", sorted(REGISTRY))
    def test_produces_results_in_engine(self, abbrev):
        query = build_app(abbrev, event_rate=2000.0)
        query.plan.set_uniform_parallelism(2)
        # SD's per-sensor moving average needs >= 8 readings per sensor
        # (500 sensors) before any spike can fire.
        tuples = 8000 if abbrev == "SD" else 1200
        engine = StreamEngine(
            query.plan,
            homogeneous_cluster(num_nodes=2),
            config=SimulationConfig(
                max_tuples_per_source=tuples,
                max_sim_time=6.0,
                warmup_fraction=0.0,
            ),
            rng_factory=RngFactory(7),
        )
        metrics = engine.run()
        assert metrics.results > 0
        assert metrics.latency.p50 > 0

    @pytest.mark.parametrize("abbrev", sorted(REGISTRY))
    def test_event_rate_propagates_to_sources(self, abbrev):
        query = build_app(abbrev, event_rate=6000.0)
        total = sum(
            float(op.metadata["event_rate"])
            for op in query.plan.sources()
        )
        assert total == pytest.approx(6000.0)

    def test_udo_apps_have_udo_operators(self):
        for abbrev, info in APP_INFOS.items():
            kinds = {
                op.kind
                for op in build_app(abbrev, 100.0).plan.operators.values()
            }
            assert (OperatorKind.UDO in kinds) == info.uses_udo

    def test_intensity_reflected_in_costs(self):
        """HIGH-intensity apps must carry heavier per-tuple costs than

        LOW-intensity ones — the paper's O1 grouping depends on it."""

        def max_cost(abbrev):
            return max(
                op.cost.base_cpu_s
                for op in build_app(abbrev, 100.0).plan.operators.values()
            )

        heavy = min(max_cost(a) for a in ("SA", "SG", "SD"))
        light = max(max_cost(a) for a in ("WC", "LR", "TPCH", "LP"))
        assert heavy > 5 * light


class TestAppLogicCorrectness:
    def test_wordcount_counts(self):
        from repro.apps.wordcount import _tokenize

        out = _tokenize(("stream data stream",))
        assert out == [("stream", 1.0), ("data", 1.0), ("stream", 1.0)]

    def test_sentiment_scores_sign(self):
        from repro.apps.sentiment import SentimentLogic
        from repro.sps.tuples import StreamTuple

        logic = SentimentLogic()
        positive = logic.process(
            StreamTuple(values=(1, "good great love"), event_time=0.0),
            0.0,
        )[0]
        negative = logic.process(
            StreamTuple(values=(1, "bad awful hate"), event_time=0.0),
            0.0,
        )[0]
        assert positive.values[1] > 0 > negative.values[1]

    def test_sentiment_negation_flips(self):
        from repro.apps.sentiment import SentimentLogic
        from repro.sps.tuples import StreamTuple

        logic = SentimentLogic()
        flipped = logic.process(
            StreamTuple(values=(1, "not good"), event_time=0.0), 0.0
        )[0]
        assert flipped.values[1] < 0

    def test_spike_detector_flags_spike(self):
        from repro.apps.spike_detection import SpikeLogic
        from repro.sps.tuples import StreamTuple

        logic = SpikeLogic(window=16, threshold=1.5)
        out = []
        for value in [10.0] * 10 + [30.0]:
            out = logic.process(
                StreamTuple(values=(1, value), event_time=0.0), 0.0
            )
        assert len(out) == 1
        sensor, value, average = out[0].values
        assert value == 30.0
        assert average < 15.0

    def test_smart_grid_sliding_median(self):
        from repro.apps.smart_grid import _SlidingMedian

        median = _SlidingMedian(capacity=3)
        for value in (1.0, 100.0, 2.0):
            median.add(value)
        assert median.median() == 2.0
        median.add(3.0)  # evicts 1.0 -> window [100, 2, 3]
        assert median.median() == 3.0

    def test_fraud_markov_scores_random_jumps_higher(self):
        from repro.apps.fraud_detection import MarkovScoreLogic
        from repro.sps.tuples import StreamTuple

        logic = MarkovScoreLogic(history=4)

        def feed(account, states):
            last = []
            for state in states:
                last = logic.process(
                    StreamTuple(
                        values=(account, state, 10.0), event_time=0.0
                    ),
                    0.0,
                )
            return last[0].values[1] if last else None

        normal = feed(1, [1, 1, 2, 1, 1, 2, 1])
        jumpy = feed(2, [1, 7, 3, 11, 0, 9, 5])
        assert jumpy > normal

    def test_linear_road_toll_formula(self):
        from repro.apps.linear_road import TollLogic
        from repro.sps.tuples import StreamTuple

        logic = TollLogic()
        fast = logic.process(
            StreamTuple(values=(7, 25.0), event_time=0.0), 0.0
        )
        assert fast == []
        congested = logic.process(
            StreamTuple(values=(7, 10.0), event_time=0.0), 0.0
        )[0]
        assert congested.values == (7, pytest.approx(2.0))

    def test_click_analytics_sessions(self):
        from repro.apps.click_analytics import SessionizerLogic
        from repro.sps.tuples import StreamTuple

        logic = SessionizerLogic(session_gap_s=1.0)
        first = logic.process(
            StreamTuple(values=(5, 2, 10), event_time=0.0), now=0.0
        )[0]
        assert first.values == (2, 1.0, 0.0)  # first session, not repeat
        second = logic.process(
            StreamTuple(values=(5, 2, 11), event_time=0.1), now=0.1
        )[0]
        assert second.values[1] == 2.0  # same session, second click
        returned = logic.process(
            StreamTuple(values=(5, 2, 12), event_time=5.0), now=5.0
        )[0]
        assert returned.values == (2, 1.0, 1.0)  # new session, repeat

    def test_bargain_index_emits_only_bargains(self):
        from repro.apps.bargain_index import BargainLogic
        from repro.sps.tuples import StreamTuple

        logic = BargainLogic()
        expensive = logic.process(
            StreamTuple(
                values=(1, 50.0, 1, 55.0, 100.0), event_time=0.0
            ),
            0.0,
        )
        assert expensive == []
        bargain = logic.process(
            StreamTuple(
                values=(1, 50.0, 1, 45.0, 100.0), event_time=0.0
            ),
            0.0,
        )[0]
        assert bargain.values == (1, pytest.approx(500.0))

    def test_trending_topics_topk(self):
        from repro.apps.trending_topics import TopKLogic
        from repro.sps.tuples import StreamTuple

        logic = TopKLogic(k=2)
        outputs = []
        for tag, count in [("#a", 5.0), ("#b", 3.0), ("#c", 10.0)]:
            outputs.extend(
                logic.process(
                    StreamTuple(values=(tag, count), event_time=0.0), 0.0
                )
            )
        # #c enters top-2 with rank 0
        assert any(o.values[0] == "#c" and o.values[2] == 0.0
                   for o in outputs)

    def test_machine_outlier_zscore_spikes(self):
        from repro.apps.machine_outlier import ZScoreLogic
        from repro.sps.tuples import StreamTuple

        logic = ZScoreLogic(decay=0.1)
        z = 0.0
        for _ in range(50):
            z = logic.process(
                StreamTuple(values=(1, 0.5, 0.5), event_time=0.0), 0.0
            )[0].values[2]
        spike_z = logic.process(
            StreamTuple(values=(1, 0.95, 0.5), event_time=0.0), 0.0
        )[0].values[2]
        assert spike_z > 2.0 > z
