"""Unit tests for physical plan expansion and placement strategies."""

import pytest

from repro.cluster import homogeneous_cluster, mixed_cluster
from repro.common.errors import PlacementError
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.partitioning import ForwardPartitioner, RebalancePartitioner
from repro.sps.physical import PhysicalPlan
from repro.sps.placement import (
    PackedPlacement,
    RoundRobinPlacement,
    SpeedAwarePlacement,
)
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def chain_plan(src_p=2, flt_p=4):
    plan = LogicalPlan("chain")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=1000.0,
            parallelism=src_p,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "flt",
            Predicate(1, FilterFunction.GT, 0.5, selectivity_hint=0.5),
            parallelism=flt_p,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "flt")
    plan.connect("flt", "sink")
    return plan


class TestPhysicalPlan:
    def test_subtask_counts(self):
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        assert physical.num_subtasks == 2 + 4 + 1
        assert len(physical.op_subtasks["flt"]) == 4

    def test_subtask_indices(self):
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        indices = [
            physical.subtask(gid).index
            for gid in physical.op_subtasks["flt"]
        ]
        assert indices == [0, 1, 2, 3]

    def test_channel_groups_per_producer(self):
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        for gid in physical.op_subtasks["src"]:
            groups = physical.out_channels[gid]
            assert len(groups) == 1
            assert groups[0].num_channels == 4

    def test_partitioners_cloned_per_producer(self):
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        gids = physical.op_subtasks["src"]
        first = physical.out_channels[gids[0]][0].partitioner
        second = physical.out_channels[gids[1]][0].partitioner
        assert first is not second
        assert isinstance(first, RebalancePartitioner)

    def test_forward_bound_to_producer_index(self):
        plan = chain_plan(4, 4)  # equal parallelism => forward
        physical = PhysicalPlan.from_logical(plan)
        for i, gid in enumerate(physical.op_subtasks["src"]):
            group = physical.out_channels[gid][0]
            assert isinstance(group.partitioner, ForwardPartitioner)
            assert not group.is_shuffle
            tup = kv_generator()(__import__("numpy").random.default_rng(0),
                                 0.0)
            assert group.partitioner.select(tup, 4) == [i]

    def test_shuffle_flag(self):
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        src_group = physical.out_channels[
            physical.op_subtasks["src"][0]
        ][0]
        assert src_group.is_shuffle

    def test_sink_has_no_outputs(self):
        physical = PhysicalPlan.from_logical(chain_plan())
        sink_gid = physical.op_subtasks["sink"][0]
        assert physical.out_channels[sink_gid] == []

    def test_num_channels(self):
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        # src->flt: 2 producers x 4 consumers; flt->sink: 4 x 1
        assert physical.num_channels() == 8 + 4


class TestPlacement:
    def test_round_robin_spreads_across_nodes(self):
        cluster = homogeneous_cluster(num_nodes=4)
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        placement = RoundRobinPlacement().place(physical, cluster)
        flt_nodes = [
            placement.node_of(gid) for gid in physical.op_subtasks["flt"]
        ]
        assert len(set(flt_nodes)) > 1  # spread over several nodes

    def test_round_robin_no_sharing_when_capacity_suffices(self):
        cluster = homogeneous_cluster(num_nodes=4)  # 32 slots
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        placement = RoundRobinPlacement().place(physical, cluster)
        assert all(
            placement.load_of(gid) == 1
            for gid in range(physical.num_subtasks)
        )

    def test_slot_sharing_when_oversubscribed(self):
        cluster = homogeneous_cluster(num_nodes=1)  # 8 slots
        plan = chain_plan(8, 16)  # 25 subtasks on 8 slots
        physical = PhysicalPlan.from_logical(plan)
        placement = RoundRobinPlacement().place(physical, cluster)
        loads = [
            placement.load_of(gid) for gid in range(physical.num_subtasks)
        ]
        assert max(loads) >= 3
        assert sum(
            placement.slot_load.values()
        ) == physical.num_subtasks

    def test_packed_fills_first_node(self):
        cluster = homogeneous_cluster(num_nodes=4)
        physical = PhysicalPlan.from_logical(chain_plan(2, 4))
        placement = PackedPlacement().place(physical, cluster)
        assert placement.nodes_used() == {0}  # 7 subtasks fit on 8 slots

    def test_speed_aware_prefers_fast_nodes(self):
        cluster = mixed_cluster({"m510": 2, "c6525_25g": 2})
        physical = PhysicalPlan.from_logical(chain_plan(2, 2))
        placement = SpeedAwarePlacement().place(physical, cluster)
        fast_nodes = {
            node.node_id
            for node in cluster.nodes
            if node.hardware.name == "c6525_25g"
        }
        # With ample capacity, everything lands on the fastest cores.
        assert placement.nodes_used() <= fast_nodes

    def test_empty_plan_rejected(self):
        cluster = homogeneous_cluster(num_nodes=1)
        physical = PhysicalPlan(logical=LogicalPlan("empty"))
        for strategy in (
            RoundRobinPlacement(),
            PackedPlacement(),
            SpeedAwarePlacement(),
        ):
            with pytest.raises(PlacementError):
                strategy.place(physical, cluster)
