"""Tests for the workload generator: streams, query structures, facade."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.sps.logical import OperatorKind
from repro.sps.types import DataType
from repro.workload import (
    ParameterSpace,
    QueryStructure,
    WorkloadGenerator,
    build_structure,
    random_stream_spec,
)
from repro.workload.datagen import FieldSpec, StreamSpec
from repro.workload.distributions import UniformDouble, UniformInt
from repro.workload.generator import scale_plan_costs
from repro.workload.parameter_space import (
    EVENT_RATES,
    PARALLELISM_CATEGORIES,
    PARALLELISM_DEGREES,
)


class TestParameterSpace:
    def test_defaults_match_table3(self):
        space = ParameterSpace()
        assert 100_000.0 in space.event_rates
        assert 4_000_000.0 in space.event_rates
        assert space.tuple_widths == tuple(range(1, 16))
        assert set(space.sliding_ratios) == {0.3, 0.4, 0.5, 0.6, 0.7}
        assert len(EVENT_RATES) == 12

    def test_categories(self):
        assert PARALLELISM_CATEGORIES == {
            "XS": 1, "S": 2, "M": 4, "L": 8, "XL": 16, "XXL": 32,
        }
        assert max(PARALLELISM_DEGREES) == 128

    def test_sampling_stays_in_ranges(self, rng):
        space = ParameterSpace()
        for _ in range(50):
            assert space.sample_event_rate(rng) in space.event_rates
            assert space.sample_tuple_width(rng) in space.tuple_widths
            assert (
                space.sample_window_duration_s(rng) * 1e3
                in space.window_durations_ms
            )
            assert space.sample_parallelism(rng) in (
                space.parallelism_degrees
            )

    def test_invalid_band(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace(selectivity_band=(0.9, 0.1))

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace(event_rates=(0.0,))


class TestStreamSpec:
    def _spec(self):
        return StreamSpec(
            name="s",
            fields=(
                FieldSpec("k", UniformInt(0, 9)),
                FieldSpec("v", UniformDouble(0.0, 1.0)),
            ),
            event_rate=1000.0,
        )

    def test_schema_matches_fields(self):
        schema = self._spec().schema()
        assert schema.width == 2
        assert schema.field("k").dtype is DataType.INT

    def test_generator_produces_valid_tuples(self, rng):
        spec = self._spec()
        generate = spec.generator()
        tup = generate(rng, 1.5)
        assert len(tup.values) == 2
        assert 0 <= tup.values[0] <= 9
        assert tup.event_time == 1.5
        assert tup.size_bytes == spec.schema().tuple_size_bytes()

    def test_invalid_specs(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("s", (), 100.0)
        with pytest.raises(ConfigurationError):
            StreamSpec(
                "s", (FieldSpec("a", UniformInt()),), 0.0
            )
        with pytest.raises(ConfigurationError):
            StreamSpec(
                "s", (FieldSpec("a", UniformInt()),), 10.0,
                arrival="warp",
            )

    def test_numeric_field_indices(self):
        assert self._spec().numeric_field_indices() == [0, 1]


class TestRandomStreamSpec:
    def test_width_in_range(self, rng):
        space = ParameterSpace()
        for _ in range(20):
            spec = random_stream_spec("s", rng, space)
            assert 1 <= spec.tuple_width <= 16  # +1 numeric guarantee

    def test_int_key_guaranteed(self, rng):
        spec = random_stream_spec("s", rng, key_cardinality=50)
        assert spec.fields[0].dtype is DataType.INT
        assert spec.fields[0].distribution.hi == 49

    def test_numeric_field_guaranteed(self, rng):
        for _ in range(20):
            spec = random_stream_spec("s", rng)
            assert spec.numeric_field_indices()

    def test_event_rate_override(self, rng):
        spec = random_stream_spec("s", rng, event_rate=123.0)
        assert spec.event_rate == 123.0


class TestBuildStructure:
    @pytest.mark.parametrize("structure", list(QueryStructure))
    def test_all_structures_valid(self, structure, rng):
        query = build_structure(structure, rng, event_rate=1000.0)
        query.plan.validate()
        assert len(query.streams) == structure.num_sources
        joins = [
            op
            for op in query.plan.operators.values()
            if op.kind is OperatorKind.WINDOW_JOIN
        ]
        assert len(joins) == structure.num_joins

    def test_seen_unseen_split(self):
        seen = {s for s in QueryStructure if s.is_seen}
        assert seen == {
            QueryStructure.LINEAR,
            QueryStructure.TWO_WAY_JOIN,
            QueryStructure.THREE_WAY_JOIN,
        }

    def test_complexity_rank_total_order(self):
        ranks = {s.complexity_rank for s in QueryStructure}
        assert ranks == set(range(9))

    def test_filter_chain_lengths(self, rng):
        query = build_structure(
            QueryStructure.THREE_FILTER_CHAIN, rng, event_rate=100.0
        )
        filters = [
            op
            for op in query.plan.operators.values()
            if op.kind is OperatorKind.FILTER
        ]
        assert len(filters) == 3

    def test_filter_selectivities_in_band(self, rng):
        space = ParameterSpace()
        for _ in range(10):
            query = build_structure(
                QueryStructure.TWO_FILTER_CHAIN, rng, space, 1000.0
            )
            for op in query.plan.operators.values():
                if op.kind is OperatorKind.FILTER:
                    assert 0.0 < op.selectivity < 1.0

    def test_chained_filters_never_contradict(self):
        """Paper requirement: chained filters must keep passing data —

        two predicates on the same field must not form an empty
        conjunction (e.g. f1 < 0.4 AND f1 > 0.6)."""
        from repro.workload.querygen import _conjunction_selectivity

        for seed in range(25):
            rng = np.random.default_rng(seed)
            query = build_structure(
                QueryStructure.THREE_FILTER_CHAIN, rng, None, 1000.0
            )
            by_field: dict[int, list] = {}
            for op in query.plan.operators.values():
                if op.kind is not OperatorKind.FILTER:
                    continue
                logic = op.logic_factory()
                by_field.setdefault(
                    logic.predicate.field_index, []
                ).append(logic.predicate)
            stream = query.streams[0]
            check_rng = np.random.default_rng(seed + 1000)
            for field_index, predicates in by_field.items():
                if len(predicates) < 2:
                    continue
                survived = _conjunction_selectivity(
                    stream.fields[field_index].distribution,
                    predicates,
                    check_rng,
                )
                assert survived > 0.02

    def test_join_selectivity_bounded(self, rng):
        for _ in range(10):
            query = build_structure(
                QueryStructure.THREE_WAY_JOIN, rng, event_rate=100_000.0
            )
            for op in query.plan.operators.values():
                if op.kind is OperatorKind.WINDOW_JOIN:
                    assert 0.0 < op.selectivity <= 32.0

    def test_deterministic_per_seed(self):
        a = build_structure(
            QueryStructure.LINEAR, np.random.default_rng(5), None, 100.0
        )
        b = build_structure(
            QueryStructure.LINEAR, np.random.default_rng(5), None, 100.0
        )
        assert a.plan.describe() == b.plan.describe()


class TestWorkloadGenerator:
    def test_generates_requested_count(self, small_cluster):
        generator = WorkloadGenerator(seed=4)
        queries = generator.generate(
            small_cluster, count=6, event_rate=1000.0
        )
        assert len(queries) == 6
        structures = [q.structure for q in queries]
        assert len(set(structures)) == 6  # cycles through structures

    def test_parallelism_assigned_and_valid(self, small_cluster):
        generator = WorkloadGenerator(seed=4)
        for query in generator.generate(
            small_cluster, count=4, event_rate=10_000.0
        ):
            degrees = query.plan.parallelism_degrees()
            assert all(d >= 1 for d in degrees.values())
            assert query.params["strategy"] == "rule-based"
            query.plan.validate()

    def test_cost_scale_dilation(self, small_cluster):
        generator = WorkloadGenerator(seed=4)
        plain = generator.generate(
            small_cluster, count=1,
            structures=[QueryStructure.LINEAR], event_rate=1000.0,
        )[0]
        generator2 = WorkloadGenerator(seed=4)
        dilated = generator2.generate(
            small_cluster, count=1,
            structures=[QueryStructure.LINEAR], event_rate=1000.0,
            cost_scale=10.0,
        )[0]
        plain_cost = plain.plan.operator("filter0").cost.base_cpu_s
        dilated_cost = dilated.plan.operator("filter0").cost.base_cpu_s
        assert dilated_cost == pytest.approx(10.0 * plain_cost)

    def test_scale_plan_costs_rejects_nonpositive(self, small_cluster):
        generator = WorkloadGenerator(seed=4)
        query = generator.generate(
            small_cluster, count=1, event_rate=100.0
        )[0]
        with pytest.raises(ConfigurationError):
            scale_plan_costs(query.plan, 0.0)

    def test_unique_queries_across_calls(self, small_cluster):
        generator = WorkloadGenerator(seed=4)
        first = generator.generate(
            small_cluster, count=1,
            structures=[QueryStructure.LINEAR], event_rate=1000.0,
        )[0]
        second = generator.generate(
            small_cluster, count=1,
            structures=[QueryStructure.LINEAR], event_rate=1000.0,
        )[0]
        # Fresh randomness per query: filter predicates should differ.
        p1 = first.plan.operator("filter0").metadata["predicate"]
        p2 = second.plan.operator("filter0").metadata["predicate"]
        assert p1 != p2

    def test_invalid_count(self, small_cluster):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator().generate(small_cluster, count=0)
