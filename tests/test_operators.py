"""Unit tests for operator logics: filter, map, windows, join, UDO, sink."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.sps.operators.aggregate import WindowAggregateLogic
from repro.sps.operators.base import OperatorContext
from repro.sps.operators.filter_op import FilterLogic
from repro.sps.operators.join import WindowJoinLogic
from repro.sps.operators.map_op import FlatMapLogic, MapLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.operators.source import SourceLogic
from repro.sps.operators.udo import FunctionUDO
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.windows import (
    AggregateFunction,
    SlidingCountWindows,
    SlidingTimeWindows,
    TumblingCountWindows,
    TumblingTimeWindows,
)


def ctx(index=0, parallelism=1):
    return OperatorContext(
        op_id="op",
        subtask_index=index,
        parallelism=parallelism,
        rng=np.random.default_rng(0),
    )


def tup(*values, t=0.0, key=None, origin=None):
    return StreamTuple(
        values=values, event_time=t, origin_time=origin, key=key
    )


class TestFilterLogic:
    def test_pass_and_drop(self):
        logic = FilterLogic(Predicate(0, FilterFunction.GT, 5))
        logic.setup(ctx())
        assert logic.process(tup(9), 0.0) == [tup(9).values] or True
        assert len(logic.process(tup(9), 0.0)) == 1
        assert logic.process(tup(3), 0.0) == []

    def test_observed_selectivity(self):
        logic = FilterLogic(Predicate(0, FilterFunction.GT, 5))
        logic.setup(ctx())
        for value in [1, 6, 7, 2]:
            logic.process(tup(value), 0.0)
        assert logic.observed_selectivity == pytest.approx(0.5)

    def test_selectivity_before_input(self):
        logic = FilterLogic(Predicate(0, FilterFunction.GT, 5))
        assert logic.observed_selectivity == 1.0


class TestMapLogics:
    def test_map_transforms_values(self):
        logic = MapLogic(lambda values: (values[0] * 2,))
        logic.setup(ctx())
        out = logic.process(tup(21, origin=1.5), 9.0)
        assert out[0].values == (42,)
        assert out[0].origin_time == 1.5

    def test_flatmap_fanout(self):
        logic = FlatMapLogic(
            lambda values: [(w,) for w in values[0].split()],
            expected_fanout=2.0,
        )
        logic.setup(ctx())
        out = logic.process(tup("a b c"), 0.0)
        assert [o.values for o in out] == [("a",), ("b",), ("c",)]
        # work units reflect last fan-out relative to expectation
        assert logic.work_units(tup("x")) == pytest.approx(1.5)

    def test_flatmap_empty_output(self):
        logic = FlatMapLogic(lambda values: [], expected_fanout=1.0)
        logic.setup(ctx())
        assert logic.process(tup("x"), 0.0) == []


class TestSourceLogic:
    def test_generate_stamps_times(self):
        logic = SourceLogic(
            lambda rng, now: StreamTuple(values=(1,), event_time=-1.0)
        )
        logic.setup(ctx())
        out = logic.generate(7.5)
        assert out.event_time == 7.5
        assert out.origin_time == 7.5
        assert logic.emitted == 1

    def test_process_forbidden(self):
        logic = SourceLogic(lambda rng, now: tup(1))
        logic.setup(ctx())
        with pytest.raises(RuntimeError):
            logic.process(tup(1), 0.0)


class TestTumblingTimeAggregate:
    def _logic(self, function=AggregateFunction.SUM):
        logic = WindowAggregateLogic(
            TumblingTimeWindows(1.0), function, value_field=1, key_field=0
        )
        logic.setup(ctx())
        return logic

    def test_fires_when_window_passes(self):
        logic = self._logic()
        assert logic.process(tup("a", 1.0), now=0.2) == []
        assert logic.process(tup("a", 2.0), now=0.7) == []
        out = logic.process(tup("a", 5.0), now=1.1)
        assert len(out) == 1
        assert out[0].values == ("a", 3.0)  # sum of first window only

    def test_origin_is_earliest_contributor(self):
        logic = self._logic()
        logic.process(tup("a", 1.0, origin=0.2), now=0.2)
        logic.process(tup("a", 1.0, origin=0.9), now=0.9)
        out = logic.on_time(now=1.0)
        assert out[0].origin_time == pytest.approx(0.2)

    def test_keys_are_independent(self):
        logic = self._logic()
        logic.process(tup("a", 1.0), now=0.1)
        logic.process(tup("b", 10.0), now=0.2)
        out = logic.on_time(now=1.0)
        values = {o.values[0]: o.values[1] for o in out}
        assert values == {"a": 1.0, "b": 10.0}

    def test_flush_emits_incomplete_windows(self):
        logic = self._logic()
        logic.process(tup("a", 4.0), now=0.3)
        out = logic.flush(now=0.5)
        assert len(out) == 1
        assert out[0].values == ("a", 4.0)
        assert logic.flush(now=0.6) == []  # idempotent

    def test_timer_interval_set(self):
        assert self._logic().timer_interval == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "function,expected",
        [
            (AggregateFunction.MIN, 1.0),
            (AggregateFunction.MAX, 3.0),
            (AggregateFunction.AVG, 2.0),
            (AggregateFunction.COUNT, 3.0),
        ],
    )
    def test_aggregate_functions(self, function, expected):
        logic = self._logic(function)
        for value in (1.0, 2.0, 3.0):
            logic.process(tup("k", value), now=0.1)
        out = logic.on_time(now=1.5)
        assert out[0].values[1] == pytest.approx(expected)

    def test_global_window_without_key(self):
        logic = WindowAggregateLogic(
            TumblingTimeWindows(1.0), AggregateFunction.SUM, value_field=0
        )
        logic.setup(ctx())
        logic.process(tup(1.0), now=0.1)
        logic.process(tup(2.0), now=0.2)
        out = logic.on_time(now=1.0)
        assert out[0].values == (None, 3.0)


class TestSlidingTimeAggregate:
    def test_value_counted_in_overlapping_windows(self):
        logic = WindowAggregateLogic(
            SlidingTimeWindows(1.0, 0.5),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
        )
        logic.setup(ctx())
        logic.process(tup("a", 1.0), now=0.75)  # windows [0,1) and [0.5,1.5)
        out = logic.on_time(now=1.6)
        assert len(out) == 2
        assert all(o.values == ("a", 1.0) for o in out)


class TestCountAggregates:
    def test_tumbling_count_fires_exactly_at_length(self):
        logic = WindowAggregateLogic(
            TumblingCountWindows(3),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
        )
        logic.setup(ctx())
        assert logic.process(tup("a", 1.0), 0.0) == []
        assert logic.process(tup("a", 2.0), 0.1) == []
        out = logic.process(tup("a", 3.0), 0.2)
        assert out[0].values == ("a", 6.0)
        # counter reset: the next window starts fresh
        assert logic.process(tup("a", 9.0), 0.3) == []

    def test_sliding_count_slide(self):
        logic = WindowAggregateLogic(
            SlidingCountWindows(3, 2),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
        )
        logic.setup(ctx())
        outs = []
        for i, value in enumerate([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]):
            outs.extend(logic.process(tup("a", value), float(i)))
        # Only full windows fire: the first once the buffer holds 3
        # values, then every 2 tuples over the last 3 values.
        assert [o.values[1] for o in outs] == [6.0, 12.0, 18.0]

    def test_count_flush(self):
        logic = WindowAggregateLogic(
            TumblingCountWindows(5),
            AggregateFunction.COUNT,
            value_field=1,
            key_field=0,
        )
        logic.setup(ctx())
        logic.process(tup("a", 1.0), 0.0)
        logic.process(tup("a", 1.0), 0.1)
        out = logic.flush(1.0)
        assert out[0].values == ("a", 2.0)


class TestWindowJoin:
    def _logic(self):
        logic = WindowJoinLogic(
            TumblingTimeWindows(1.0), left_key_field=0, right_key_field=0
        )
        logic.setup(ctx())
        return logic

    def test_matching_keys_join(self):
        logic = self._logic()
        assert logic.process(tup("k", 1.0), now=0.1, port=0) == []
        out = logic.process(tup("k", 2.0), now=0.2, port=1)
        assert len(out) == 1
        assert out[0].values == ("k", 1.0, "k", 2.0)

    def test_left_right_order_preserved(self):
        logic = self._logic()
        logic.process(tup("k", "right"), now=0.1, port=1)
        out = logic.process(tup("k", "left"), now=0.2, port=0)
        assert out[0].values == ("k", "left", "k", "right")

    def test_non_matching_keys_do_not_join(self):
        logic = self._logic()
        logic.process(tup("a", 1.0), now=0.1, port=0)
        assert logic.process(tup("b", 2.0), now=0.2, port=1) == []

    def test_window_expiry_prevents_joins(self):
        logic = self._logic()
        logic.process(tup("k", 1.0), now=0.1, port=0)
        # Second tuple arrives in the next window: no match.
        assert logic.process(tup("k", 2.0), now=1.5, port=1) == []
        assert logic.buffered_windows == 1  # old window evicted

    def test_origin_is_earliest_of_pair(self):
        logic = self._logic()
        logic.process(tup("k", 1.0, origin=0.05), now=0.1, port=0)
        out = logic.process(tup("k", 2.0, origin=0.2), now=0.2, port=1)
        assert out[0].origin_time == pytest.approx(0.05)

    def test_multiple_matches(self):
        logic = self._logic()
        logic.process(tup("k", 1.0), now=0.1, port=0)
        logic.process(tup("k", 2.0), now=0.15, port=0)
        out = logic.process(tup("k", 9.0), now=0.2, port=1)
        assert len(out) == 2

    def test_match_cap(self):
        logic = WindowJoinLogic(
            TumblingTimeWindows(1.0),
            left_key_field=0,
            right_key_field=0,
            max_matches_per_probe=3,
        )
        logic.setup(ctx())
        for _ in range(10):
            logic.process(tup("k", 1.0), now=0.1, port=0)
        out = logic.process(tup("k", 2.0), now=0.2, port=1)
        assert len(out) == 3

    def test_match_cap_feeds_cost_accounting(self):
        """A capped probe bills exactly the capped match count.

        ``work_units`` reads the previous probe's matches, so the cap
        must flow into the next billing, and a subsequent zero-match
        probe must drop the cost back to the base unit.
        """
        logic = WindowJoinLogic(
            TumblingTimeWindows(1.0),
            left_key_field=0,
            right_key_field=0,
            max_matches_per_probe=3,
        )
        logic.setup(ctx())
        for _ in range(10):
            logic.process(tup("k", 1.0), now=0.1, port=0)
        out = logic.process(tup("k", 2.0), now=0.2, port=1)
        assert len(out) == 3
        assert logic.matches_emitted == 3
        assert logic.work_units(tup("k", 0.0)) == pytest.approx(2.5)
        assert logic.process(tup("miss", 0.0), now=0.3, port=1) == []
        assert logic.work_units(tup("k", 0.0)) == pytest.approx(1.0)

    def test_raising_probe_resets_cost_accounting(self):
        """A probe that raises must not leave ``work_units`` reading the

        previous successful probe's match count (stale-cost regression:
        raising paths used to skip the ``_last_matches`` update)."""
        logic = self._logic()
        for _ in range(4):
            logic.process(tup("k", 1.0), now=0.1, port=0)
        assert len(logic.process(tup("k", 2.0), now=0.2, port=1)) == 4
        assert logic.work_units(tup("k", 0.0)) == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            logic.process(tup("k", 3.0), now=0.3, port=2)
        assert logic.work_units(tup("k", 0.0)) == pytest.approx(1.0)
        assert logic.matches_emitted == 4  # raising probe emitted nothing

    def test_invalid_port(self):
        with pytest.raises(ConfigurationError):
            self._logic().process(tup("k", 1.0), now=0.1, port=2)

    def test_count_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowJoinLogic(TumblingCountWindows(10))

    def test_reference_nested_loop_equivalence(self):
        """Symmetric hash join == reference nested-loop join per window."""
        rng = np.random.default_rng(3)
        logic = self._logic()
        left = [
            tup(int(rng.integers(4)), i, t=float(rng.uniform(0, 1)))
            for i in range(30)
        ]
        right = [
            tup(int(rng.integers(4)), 100 + i, t=float(rng.uniform(0, 1)))
            for i in range(30)
        ]
        events = sorted(
            [(t.event_time, 0, t) for t in left]
            + [(t.event_time, 1, t) for t in right]
        )
        joined = []
        for when, port, tuple_ in events:
            joined.extend(
                o.values for o in logic.process(tuple_, when, port)
            )
        # Reference: all-pairs within the single [0, 1) window.
        expected = {
            (lt.values[0], lt.values[1], rt.values[0], rt.values[1])
            for lt in left
            for rt in right
            if lt.values[0] == rt.values[0]
        }
        assert set(joined) == expected


class TestFunctionUDO:
    def test_state_persists(self):
        def count(state, tuple_, now):
            state["n"] = state.get("n", 0) + 1
            return [tuple_.with_values((state["n"],))]

        logic = FunctionUDO(count)
        logic.setup(ctx())
        logic.process(tup(0), 0.0)
        out = logic.process(tup(0), 0.1)
        assert out[0].values == (2,)

    def test_work_profile(self):
        logic = FunctionUDO(
            lambda state, t, now: [], work_profile=lambda t: 7.0
        )
        assert logic.work_units(tup(1)) == 7.0

    def test_timer_fn(self):
        def on_timer(state, now):
            return [StreamTuple(values=("tick",), event_time=now)]

        logic = FunctionUDO(
            lambda state, t, now: [],
            timer_fn=on_timer,
            timer_interval=0.5,
        )
        logic.setup(ctx())
        assert logic.timer_interval == 0.5
        assert logic.on_time(1.0)[0].values == ("tick",)


class TestSink:
    def test_latency_recorded(self):
        sink = SinkLogic()
        sink.setup(ctx())
        sink.process(tup(1, origin=1.0), now=3.5)
        assert sink.latencies == [pytest.approx(2.5)]
        assert sink.received == 1

    def test_keeps_values_when_asked(self):
        sink = SinkLogic(keep_values=True, max_kept=2)
        sink.setup(ctx())
        for i in range(5):
            sink.process(tup(i), now=float(i))
        assert sink.results == [(0,), (1,)]
        assert sink.received == 5
