"""Tests for the static plan analyzer (repro.analysis).

Each of the plan-level rule families is exercised with at least one failing
fixture (a hand-built broken plan) and one passing fixture, as the
pre-flight gate's contract requires.
"""

import json
import math

import pytest

from repro.analysis import (
    RULE_CATALOG,
    AnalysisReport,
    Diagnostic,
    PreflightError,
    Severity,
    analyze_plan,
    preflight,
)
from repro.cluster.cluster import homogeneous_cluster
from repro.common.errors import PlanError
from repro.sps import builders
from repro.sps.engine import StreamEngine
from repro.sps.logical import LogicalOperator, LogicalPlan, OperatorKind
from repro.sps.partitioning import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)
from repro.sps.placement import RoundRobinPlacement
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import (
    AggregateFunction,
    SlidingTimeWindows,
    TumblingCountWindows,
    TumblingTimeWindows,
)

from repro.sps.tuples import StreamTuple

SCHEMA = Schema(
    [
        Field("key", DataType.INT),
        Field("value", DataType.DOUBLE),
        Field("label", DataType.STRING),
    ]
)


def _gen(rng, now):
    return StreamTuple(
        values=(int(rng.integers(10)), float(rng.random()), "x"),
        event_time=now,
        size_bytes=32.0,
    )


def _source(op_id="src", schema=SCHEMA, parallelism=1):
    return builders.source(
        op_id,
        _gen,
        schema,
        event_rate=1000.0,
        parallelism=parallelism,
    )


def good_plan(parallelism=2) -> LogicalPlan:
    """source -> filter -> window_agg(key 0, value 1) -> sink."""
    plan = LogicalPlan("good")
    plan.add_operator(_source())
    plan.add_operator(
        builders.filter_op(
            "keep",
            Predicate(1, FilterFunction.GT, 0.5, selectivity_hint=0.5),
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.window_agg(
            "agg",
            TumblingTimeWindows(0.5),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "keep")
    plan.connect("keep", "agg")
    plan.connect("agg", "sink")
    return plan


def codes_of(report: AnalysisReport) -> set:
    return report.codes()


class TestDiagnosticPrimitives:
    def test_diagnostic_format_and_location(self):
        diag = Diagnostic(
            code="PLAN003",
            severity=Severity.ERROR,
            message="cycle",
            op_id="agg",
            hint="break it",
        )
        assert diag.location == "agg"
        line = diag.format()
        assert "ERROR" in line and "PLAN003" in line and "[agg]" in line
        assert "break it" in line

    def test_edge_location_wins_over_op(self):
        diag = Diagnostic(
            code="KEY201",
            severity=Severity.ERROR,
            message="m",
            op_id="agg",
            edge="a->b",
        )
        assert diag.location == "a->b"

    def test_report_sorting_and_summary(self):
        report = AnalysisReport("p")
        report.add(
            Diagnostic(code="WIN305", severity=Severity.INFO, message="i")
        )
        report.add(
            Diagnostic(code="PLAN001", severity=Severity.ERROR, message="e")
        )
        assert report.sorted()[0].code == "PLAN001"
        assert report.summary() == "1 error, 0 warnings, 1 info"
        assert report.has_errors and not report.is_clean

    def test_report_json_round_trip(self):
        report = analyze_plan(good_plan())
        data = json.loads(report.to_json())
        assert data["plan"] == "good"
        assert data["clean"] is True
        assert data["diagnostics"] == []

    def test_catalogue_covers_all_ten_families(self):
        families = {spec.family for spec in RULE_CATALOG.values()}
        assert families == {
            "dag", "schema", "keying", "window", "resource", "cost",
            "determinism", "batch", "ft", "shard",
        }

    def test_every_diagnostic_code_is_catalogued(self):
        assert all(code in RULE_CATALOG for code in
                   ("PLAN001", "SCH102", "KEY201", "WIN302", "RES401",
                    "COST502"))


class TestDagRules:
    def test_good_plan_has_no_dag_findings(self):
        report = analyze_plan(good_plan())
        assert not any(c.startswith("PLAN") for c in codes_of(report))

    def test_missing_source_and_sink(self):
        plan = LogicalPlan("empty")
        report = analyze_plan(plan)
        assert {"PLAN001", "PLAN002"} <= codes_of(report)

    def test_cycle_detected(self):
        plan = good_plan()
        plan.connect("agg", "keep", RebalancePartitioner())
        report = analyze_plan(plan)
        assert "PLAN003" in codes_of(report)

    def test_source_with_input(self):
        plan = good_plan()
        plan.connect("keep", "src", RebalancePartitioner())
        report = analyze_plan(plan)
        assert "PLAN004" in codes_of(report)

    def test_unreachable_operator(self):
        plan = good_plan()
        plan.add_operator(
            builders.map_op("orphan", lambda values: values)
        )
        plan.connect("orphan", "sink", RebalancePartitioner())
        report = analyze_plan(plan)
        findings = report.by_code("PLAN005")
        assert [d.op_id for d in findings] == ["orphan"]

    def test_sinkless_branch(self):
        plan = good_plan()
        plan.add_operator(
            builders.map_op("deadend", lambda values: values)
        )
        plan.connect("keep", "deadend")
        report = analyze_plan(plan)
        findings = report.by_code("PLAN006")
        assert [d.op_id for d in findings] == ["deadend"]

    def test_join_port_discipline(self):
        plan = LogicalPlan("ports")
        plan.add_operator(_source("a"))
        plan.add_operator(_source("b"))
        plan.add_operator(
            builders.window_join(
                "join",
                SlidingTimeWindows(1.0, 0.5),
                left_key_field=0,
                right_key_field=0,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("a", "join", port=0)
        plan.connect("b", "join", port=0)  # should be port=1
        plan.connect("join", "sink")
        report = analyze_plan(plan)
        assert "PLAN007" in codes_of(report)

    def test_duplicate_edge_warning(self):
        plan = good_plan()
        plan.connect("src", "keep", RebalancePartitioner())
        report = analyze_plan(plan)
        findings = report.by_code("PLAN008")
        assert findings and findings[0].severity is Severity.WARNING

    def test_forward_parallelism_mismatch(self):
        plan = LogicalPlan("fwd")
        plan.add_operator(_source(parallelism=2))
        plan.add_operator(
            builders.map_op("m", lambda values: values, parallelism=3)
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "m", ForwardPartitioner())
        plan.connect("m", "sink")
        report = analyze_plan(plan)
        assert "PLAN009" in codes_of(report)

    def test_sink_with_output(self):
        plan = good_plan()
        plan.add_operator(builders.sink("sink2"))
        plan.connect("sink", "sink2", RebalancePartitioner())
        report = analyze_plan(plan)
        assert "PLAN010" in codes_of(report)

    def test_duplicate_op_id_raises_coded_plan_error(self):
        plan = good_plan()
        with pytest.raises(PlanError) as excinfo:
            plan.add_operator(builders.sink("sink"))
        assert excinfo.value.code == "PLAN000"


class TestSchemaRules:
    def test_good_plan_has_no_schema_findings(self):
        report = analyze_plan(good_plan())
        assert not any(c.startswith("SCH") for c in codes_of(report))

    def test_source_without_schema(self):
        plan = LogicalPlan("noschema")
        plan.add_operator(
            LogicalOperator(
                op_id="src",
                kind=OperatorKind.SOURCE,
                logic_factory=lambda: None,
                metadata={"event_rate": 10.0},
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "sink")
        report = analyze_plan(plan)
        assert "SCH101" in codes_of(report)

    def test_field_index_out_of_bounds(self):
        plan = good_plan()
        plan.operators["agg"].metadata["value_field"] = 9
        report = analyze_plan(plan)
        assert "SCH102" in codes_of(report)

    def test_join_key_type_mismatch(self):
        left = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])
        right = Schema(
            [Field("k", DataType.STRING), Field("v", DataType.DOUBLE)]
        )
        plan = LogicalPlan("joinmix")
        plan.add_operator(_source("l", schema=left))
        plan.add_operator(_source("r", schema=right))
        plan.add_operator(
            builders.window_join(
                "join",
                SlidingTimeWindows(1.0, 0.5),
                left_key_field=0,
                right_key_field=0,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("l", "join", port=0)
        plan.connect("r", "join", port=1)
        plan.connect("join", "sink")
        report = analyze_plan(plan)
        assert "SCH103" in codes_of(report)

    def test_aggregate_over_string_field(self):
        plan = good_plan()
        plan.operators["agg"].metadata["value_field"] = 2  # label: STRING
        report = analyze_plan(plan)
        assert "SCH104" in codes_of(report)

    def test_predicate_type_mismatch(self):
        plan = LogicalPlan("badpred")
        plan.add_operator(_source())
        plan.add_operator(
            builders.filter_op(
                "f",
                # numeric comparison against the STRING field
                Predicate(2, FilterFunction.GT, 0.5),
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "f")
        plan.connect("f", "sink")
        report = analyze_plan(plan)
        assert "SCH105" in codes_of(report)

    def test_string_literal_against_numeric_field(self):
        plan = LogicalPlan("badlit")
        plan.add_operator(_source())
        plan.add_operator(
            builders.filter_op(
                "f", Predicate(1, FilterFunction.EQ, "oops")
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "f")
        plan.connect("f", "sink")
        report = analyze_plan(plan)
        assert "SCH105" in codes_of(report)

    def test_undeclared_udo_schema_is_info(self):
        plan = LogicalPlan("udoschema")
        plan.add_operator(_source())
        plan.add_operator(builders.udo("u", lambda: None))
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "u")
        plan.connect("u", "sink")
        report = analyze_plan(plan)
        findings = report.by_code("SCH106")
        assert findings and findings[0].severity is Severity.INFO
        assert not report.has_errors


class TestKeyingRules:
    def test_good_plan_has_no_keying_findings(self):
        report = analyze_plan(good_plan(parallelism=4))
        assert not any(c.startswith("KEY") for c in codes_of(report))

    def test_rebalance_into_keyed_agg(self):
        plan = good_plan(parallelism=2)
        # replace the hash edge into the keyed aggregate
        plan._edges = [e for e in plan.edges if e.dst != "agg"]
        plan.connect("keep", "agg", RebalancePartitioner())
        report = analyze_plan(plan)
        assert "KEY201" in codes_of(report)

    def test_hash_key_mismatch(self):
        plan = good_plan(parallelism=2)
        plan._edges = [e for e in plan.edges if e.dst != "agg"]
        plan.connect("keep", "agg", HashPartitioner(key_field=1))
        report = analyze_plan(plan)
        assert "KEY202" in codes_of(report)

    def test_parallelism_one_consumer_is_tolerated(self):
        plan = good_plan(parallelism=1)
        plan._edges = [e for e in plan.edges if e.dst != "agg"]
        plan.connect("keep", "agg", RebalancePartitioner())
        report = analyze_plan(plan)
        assert "KEY201" not in codes_of(report)

    def test_broadcast_into_stateful_warns(self):
        plan = good_plan(parallelism=2)
        plan._edges = [e for e in plan.edges if e.dst != "agg"]
        plan.connect("keep", "agg", BroadcastPartitioner())
        report = analyze_plan(plan)
        findings = report.by_code("KEY204")
        assert findings and findings[0].severity is Severity.WARNING


class TestWindowRules:
    def test_good_plan_has_no_window_findings(self):
        report = analyze_plan(good_plan())
        assert not any(c.startswith("WIN") for c in codes_of(report))

    def test_missing_window(self):
        plan = good_plan()
        plan.operators["agg"].window = None
        report = analyze_plan(plan)
        assert "WIN301" in codes_of(report)

    def test_slide_exceeding_length(self):
        plan = good_plan()
        window = SlidingTimeWindows(1.0, 0.5)
        window.slide = 2.0  # bypass the constructor guard
        plan.operators["agg"].window = window
        report = analyze_plan(plan)
        assert "WIN302" in codes_of(report)

    def test_non_positive_window_extent(self):
        plan = good_plan()
        window = TumblingTimeWindows(1.0)
        window.duration = 0.0
        plan.operators["agg"].window = window
        report = analyze_plan(plan)
        assert "WIN303" in codes_of(report)

    def test_count_window_on_join(self):
        plan = LogicalPlan("cntjoin")
        plan.add_operator(_source("l"))
        plan.add_operator(_source("r"))
        plan.add_operator(
            builders.window_join(
                "join",
                TumblingCountWindows(16),
                left_key_field=0,
                right_key_field=0,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("l", "join", port=0)
        plan.connect("r", "join", port=1)
        plan.connect("join", "sink")
        report = analyze_plan(plan)
        assert "WIN304" in codes_of(report)

    def test_window_on_filter_is_info(self):
        plan = good_plan()
        plan.operators["keep"].window = TumblingTimeWindows(1.0)
        report = analyze_plan(plan)
        findings = report.by_code("WIN305")
        assert findings and findings[0].severity is Severity.INFO


class TestResourceRules:
    def test_feasible_plan_is_clean(self):
        cluster = homogeneous_cluster("m510", num_nodes=10)
        report = analyze_plan(good_plan(parallelism=4), cluster=cluster)
        assert not any(c.startswith("RES") for c in codes_of(report))

    def test_no_cluster_skips_resource_family(self):
        report = analyze_plan(good_plan(parallelism=64))
        assert not any(c.startswith("RES") for c in codes_of(report))

    def test_parallelism_exceeding_slots_is_error(self):
        cluster = homogeneous_cluster("m510", num_nodes=2)  # 16 slots
        report = analyze_plan(good_plan(parallelism=50), cluster=cluster)
        findings = report.by_code("RES401")
        assert findings and findings[0].severity is Severity.ERROR

    def test_oversubscription_warns(self):
        cluster = homogeneous_cluster("m510", num_nodes=2)  # 16 slots
        report = analyze_plan(good_plan(parallelism=10), cluster=cluster)
        # 1 + 10 + 10 + 1 = 22 subtasks on 16 slots
        findings = report.by_code("RES402")
        assert findings and findings[0].severity is Severity.WARNING
        assert not report.has_errors

    def test_placement_contention_reported(self):
        cluster = homogeneous_cluster("m510", num_nodes=2)
        report = analyze_plan(
            good_plan(parallelism=10),
            cluster=cluster,
            placement=RoundRobinPlacement(),
        )
        assert "RES403" in codes_of(report)


class TestCostRules:
    def test_good_plan_has_no_cost_findings(self):
        report = analyze_plan(good_plan())
        assert not any(c.startswith("COST") for c in codes_of(report))

    def test_constructor_rejects_nan_selectivity(self):
        with pytest.raises(PlanError) as excinfo:
            LogicalOperator(
                op_id="m",
                kind=OperatorKind.MAP,
                logic_factory=lambda: None,
                selectivity=float("nan"),
            )
        assert excinfo.value.code == "COST501"

    def test_constructor_rejects_inf_cost(self):
        from repro.sps.costs import OperatorCost

        with pytest.raises(PlanError) as excinfo:
            LogicalOperator(
                op_id="m",
                kind=OperatorKind.MAP,
                logic_factory=lambda: None,
                cost=OperatorCost(base_cpu_s=math.inf),
            )
        assert excinfo.value.code == "COST501"

    def test_analyzer_reports_non_finite_selectivity(self):
        plan = good_plan()
        plan.operators["keep"].selectivity = float("inf")
        report = analyze_plan(plan)
        assert "COST501" in codes_of(report)

    def test_filter_selectivity_above_one(self):
        plan = good_plan()
        plan.operators["keep"].selectivity = 1.5
        report = analyze_plan(plan)
        findings = report.by_code("COST502")
        assert findings and findings[0].severity is Severity.ERROR

    def test_map_fanout_without_flatmap_semantics(self):
        plan = good_plan()
        plan.add_operator(
            builders.map_op("expand", lambda values: values)
        )
        plan._edges = [e for e in plan.edges if e.dst != "sink"]
        plan.connect("agg", "expand")
        plan.connect("expand", "sink")
        plan.operators["expand"].selectivity = 2.0
        report = analyze_plan(plan)
        assert "COST503" in codes_of(report)

    def test_zero_selectivity_is_info(self):
        plan = good_plan()
        plan.operators["keep"].selectivity = 0.0
        report = analyze_plan(plan)
        findings = report.by_code("COST505")
        assert findings and findings[0].severity is Severity.INFO


class TestPreflightGate:
    def _broken_plan(self):
        plan = good_plan()
        window = SlidingTimeWindows(1.0, 0.5)
        window.slide = 2.0
        plan.operators["agg"].window = window
        return plan

    def test_preflight_raises_with_report(self):
        with pytest.raises(PreflightError) as excinfo:
            preflight(self._broken_plan())
        assert excinfo.value.code == "WIN302"
        assert excinfo.value.report.has_errors

    def test_preflight_returns_report_when_clean(self):
        report = preflight(good_plan())
        assert isinstance(report, AnalysisReport)

    def test_engine_refuses_broken_plan(self):
        cluster = homogeneous_cluster("m510", num_nodes=2)
        with pytest.raises(PreflightError):
            StreamEngine(self._broken_plan(), cluster)

    def test_engine_opt_out_builds_anyway(self):
        cluster = homogeneous_cluster("m510", num_nodes=2)
        engine = StreamEngine(
            self._broken_plan(), cluster, preflight=False
        )
        assert engine.preflight_report is None

    def test_engine_stores_clean_report(self):
        cluster = homogeneous_cluster("m510", num_nodes=2)
        engine = StreamEngine(good_plan(), cluster)
        assert engine.preflight_report is not None
        assert not engine.preflight_report.has_errors


@pytest.mark.parametrize("abbrev", sorted(
    __import__("repro.apps", fromlist=["REGISTRY"]).REGISTRY
))
def test_builtin_apps_are_diagnostic_clean(abbrev):
    """Every built-in application plan passes analysis with no findings."""
    from repro.apps import build_app

    cluster = homogeneous_cluster("m510", num_nodes=10)
    app = build_app(abbrev)
    app.set_parallelism(4)  # exercise the keyed-state rules
    report = analyze_plan(
        app.plan, cluster=cluster, placement=RoundRobinPlacement()
    )
    assert report.is_clean, report.format()


class TestShardRules:
    """SHD701-SHD704 fire only when lint is asked about a shard count
    (``repro lint-plan --shards K``); the plain report stays unchanged."""

    def _plan_with_exchange(self, partitioner) -> LogicalPlan:
        """``good_plan`` but with an explicit keep -> agg partitioner."""
        plan = LogicalPlan("shard-lint")
        plan.add_operator(_source())
        plan.add_operator(
            builders.filter_op(
                "keep",
                Predicate(1, FilterFunction.GT, 0.5, selectivity_hint=0.5),
                parallelism=4,
            )
        )
        plan.add_operator(
            builders.window_agg(
                "agg",
                TumblingTimeWindows(0.5),
                AggregateFunction.SUM,
                value_field=1,
                key_field=0,
                parallelism=4,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "keep")
        plan.connect("keep", "agg", partitioner)
        plan.connect("agg", "sink")
        return plan

    def test_shd_rules_are_catalogued(self):
        for code in ("SHD701", "SHD702", "SHD703", "SHD704"):
            assert code in RULE_CATALOG
            assert RULE_CATALOG[code].family == "shard"

    def test_shd_rules_are_opt_in(self):
        plan = self._plan_with_exchange(BroadcastPartitioner())
        report = analyze_plan(plan)
        assert not any(d.code.startswith("SHD") for d in report)
        report = analyze_plan(plan, shards=1)
        assert not any(d.code.startswith("SHD") for d in report)

    def test_broadcast_edge_warns_shd701(self):
        plan = self._plan_with_exchange(BroadcastPartitioner())
        report = analyze_plan(plan, shards=2)
        assert any(
            d.code == "SHD701" and d.severity is Severity.WARNING
            for d in report
        )

    def test_nonkeyed_stateful_exchange_warns_shd702(self):
        plan = self._plan_with_exchange(RebalancePartitioner())
        report = analyze_plan(plan, shards=2)
        assert any(
            d.code == "SHD702" and d.edge == "keep->agg" for d in report
        )

    def test_underparallel_operator_notes_shd703(self):
        report = analyze_plan(good_plan(parallelism=2), shards=4)
        shd703 = [d for d in report if d.code == "SHD703"]
        assert shd703 and all(
            d.severity is Severity.INFO for d in shd703
        )

    def test_more_shards_than_nodes_errors_shd704(self):
        cluster = homogeneous_cluster("m510", num_nodes=2)
        report = analyze_plan(
            good_plan(parallelism=2), cluster=cluster, shards=4
        )
        assert any(
            d.code == "SHD704" and d.severity is Severity.ERROR
            for d in report
        )
        wide = homogeneous_cluster("m510", num_nodes=8)
        report_ok = analyze_plan(
            good_plan(parallelism=4), cluster=wide, shards=4
        )
        assert "SHD704" not in [d.code for d in report_ok]

    def test_keyed_plan_on_wide_cluster_is_shard_clean(self):
        cluster = homogeneous_cluster("m510", num_nodes=8)
        report = analyze_plan(
            good_plan(parallelism=4), cluster=cluster, shards=4
        )
        assert not any(d.code.startswith("SHD") for d in report)
