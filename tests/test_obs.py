"""Observability layer tests.

Three layers of guarantees:

1. **unit** — the registry, histogram, tracer and exporters behave as
   documented (quantiles, disabled flags, span trees, Chrome format);
2. **zero perturbation** — attaching a full observer to the engine
   changes *no* simulated result: metrics are bit-identical with
   observation on or off, for the same seeds as the golden tests;
3. **byte stability** — trace.json and metrics.jsonl from two runs of
   the same seeded simulation are byte-identical, and the observability
   summary survives the RunRecord/dataset round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.obs import (
    EngineObserver,
    Histogram,
    MetricsRegistry,
    SpanTracer,
    merge_summaries,
)
from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.sps.engine import SimulationConfig, StreamEngine


def _wc_plan(parallelism: int = 2, rate: float = 100_000.0):
    from repro.apps import build_app
    from repro.workload.generator import scale_plan_costs

    dilation = 25.0
    query = build_app("WC", event_rate=rate / dilation)
    scale_plan_costs(query.plan, dilation)
    query.plan.set_uniform_parallelism(parallelism)
    return query.plan


def _run(plan, observer=None, seed: int = 11, tuples: int = 600):
    engine = StreamEngine(
        plan,
        homogeneous_cluster("m510", 4),
        config=SimulationConfig(
            max_tuples_per_source=tuples, max_sim_time=3.0
        ),
        rng_factory=RngFactory(seed),
        observer=observer,
    )
    return engine.run()


# ---------------------------------------------------------------- registry


class TestHistogram:
    def test_counts_mean_max(self):
        h = Histogram()
        for value in (0.001, 0.002, 0.004):
            h.record(value)
        assert h.total == 3
        assert h.mean == pytest.approx(0.007 / 3)
        assert h.maximum == 0.004

    def test_quantile_brackets_value(self):
        h = Histogram(lowest=1e-6, growth=2.0)
        for _ in range(100):
            h.record(0.003)
        # The covering bucket's upper bound is within one growth factor.
        assert 0.003 <= h.quantile(0.5) <= 0.003 * 2.0
        assert h.quantile(1.0) >= h.quantile(0.5)

    def test_overflow_and_underflow(self):
        h = Histogram(lowest=1e-3, growth=2.0, num_buckets=4)
        h.record(1e-9)  # below lowest -> bucket 0
        h.record(1e9)  # beyond top -> overflow bucket
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert h.bucket_bound(len(h.counts) - 1) == float("inf")
        # Overflow quantile reports the tracked maximum, not a bound.
        assert h.quantile(0.99) == 1e9

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram(lowest=0.0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        h = Histogram()
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_to_dict_only_nonempty_buckets(self):
        h = Histogram()
        h.record(0.5)
        d = h.to_dict()
        assert d["total"] == 1
        assert len(d["buckets"]) == 1


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        r = MetricsRegistry()
        r.inc("tuples_in", "flt")
        r.inc("tuples_in", "flt", 4.0)
        r.set_gauge("queue_depth", "flt", 7)
        r.observe("service_s", "flt", 0.01)
        assert r.counter("tuples_in", "flt") == 5.0
        assert r.gauge("queue_depth", "flt") == 7
        assert r.histogram("service_s", "flt").total == 1
        assert r.counter("missing", "flt") == 0.0
        assert r.histogram("missing", "flt") is None

    def test_disabled_registry_records_nothing(self):
        r = MetricsRegistry(enabled=False)
        r.inc("a", "op")
        r.set_gauge("b", "op", 1)
        r.observe("c", "op", 1.0)
        r.record_sample(0.5, "op", queue_depth=3)
        assert not r.counters and not r.gauges
        assert not r.histograms and not r.series

    def test_series_rows_keep_order(self):
        r = MetricsRegistry()
        r.record_sample(0.25, "src", tuples_in=10)
        r.record_sample(0.50, "src", tuples_in=25)
        assert [row["t"] for row in r.series] == [0.25, 0.50]
        assert r.series[1]["tuples_in"] == 25

    def test_summary_serialises_and_sorts(self):
        r = MetricsRegistry()
        r.inc("z", "op2")
        r.inc("a", "op1")
        summary = r.summary()
        assert list(summary["counters"]) == ["a:op1", "z:op2"]
        json.dumps(summary)  # must be JSON-serialisable


# ------------------------------------------------------------------ tracer


class TestSpanTracer:
    def test_span_tree_and_lifecycle(self):
        t = SpanTracer()
        root = t.begin("run", "engine", 0.0)
        child = t.begin("op", "operator", 0.0, parent_id=root)
        assert t.open_spans() == [root, child]
        t.end(child, 1.0)
        t.end(root, 2.0)
        assert t.open_spans() == []
        phs = [e.ph for e in t.events]
        assert phs == ["B", "B", "E", "E"]
        assert t.events[1].parent_id == root
        # The end event mirrors the begin event's identity.
        assert t.events[2].name == "op" and t.events[2].span_id == child

    def test_complete_and_instant(self):
        t = SpanTracer()
        s = t.complete("serve", "serve", 1.0, 0.25, tid=3)
        i = t.instant("window.fire", "window", 2.0, results=5)
        assert t.events[0].dur == 0.25 and t.events[0].span_id == s
        assert t.events[1].args == {"results": 5}
        assert i == s + 1  # sequential, deterministic ids

    def test_disabled_tracer_is_inert(self):
        t = SpanTracer(enabled=False)
        assert t.begin("run", "engine", 0.0) == 0
        t.end(0, 1.0)
        assert t.complete("x", "y", 0.0, 1.0) == 0
        assert len(t) == 0

    def test_end_of_unknown_span_is_ignored(self):
        t = SpanTracer()
        t.end(99, 1.0)
        assert len(t) == 0


# ---------------------------------------------------------------- exporters


class TestExport:
    def test_chrome_trace_is_valid(self):
        t = SpanTracer()
        root = t.begin("run", "engine", 0.0)
        t.complete("serve", "serve", 0.5, 0.1, parent_id=root)
        t.instant("window.fire", "window", 0.75)
        t.end(root, 1.0)
        doc = to_chrome_trace(
            t,
            process_names={0: "node 0"},
            thread_names={(0, 1): "flt[0]"},
        )
        assert validate_chrome_trace(doc) == []
        # seconds -> microseconds
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events[0]["ts"] == pytest.approx(0.5e6)
        assert events[0]["dur"] == pytest.approx(0.1e6)
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["name"] for m in metadata} == {
            "process_name",
            "thread_name",
        }

    def test_validate_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        missing_ts = {"traceEvents": [{"ph": "X", "name": "a"}]}
        assert any(
            "ts" in problem
            for problem in validate_chrome_trace(missing_ts)
        )

    def test_metrics_jsonl_round_trip(self, tmp_path):
        r = MetricsRegistry()
        r.record_sample(0.25, "src", tuples_in=10)
        r.inc("tuples_in", "src", 10)
        path = write_metrics_jsonl(
            r,
            tmp_path / "metrics.jsonl",
            meta={"plan": "wc"},
            summaries={"src": {"tuples_in": 10}},
        )
        rows = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        kinds = [row["kind"] for row in rows]
        assert kinds == ["meta", "sample", "summary", "registry"]
        assert rows[0]["plan"] == "wc"
        assert rows[2] == {
            "kind": "summary",
            "op": "src",
            "tuples_in": 10,
        }


# --------------------------------------------------- engine integration


class TestEngineObservation:
    def test_observation_never_perturbs_results(self):
        """Same seed, tracing on vs. off: identical RunMetrics."""
        plain = _run(_wc_plan())
        observer = EngineObserver(
            registry=MetricsRegistry(),
            tracer=SpanTracer(),
            sample_interval=0.1,
        )
        observed = _run(_wc_plan(), observer)
        assert json.dumps(
            plain.to_dict(), sort_keys=True
        ) == json.dumps(observed.to_dict(), sort_keys=True)

    def test_sink_tuples_in_match_results(self):
        observer = EngineObserver(sample_interval=0.25)
        metrics = _run(_wc_plan(), observer)
        summary = observer.summary()
        assert summary["ops"]["sink"]["tuples_in"] == metrics.results
        totals = summary["totals"]
        assert totals["tuples_in"] > 0 and totals["busy_s"] > 0

    def test_exports_are_byte_stable_across_runs(self, tmp_path):
        """Two same-seed runs write byte-identical trace + metrics."""
        payloads = []
        for run in ("a", "b"):
            registry = MetricsRegistry()
            tracer = SpanTracer()
            observer = EngineObserver(
                registry=registry, tracer=tracer, sample_interval=0.1
            )
            _run(_wc_plan(), observer)
            trace = write_chrome_trace(
                tracer,
                tmp_path / f"trace-{run}.json",
                process_names=observer.process_names(),
                thread_names=observer.thread_names(),
            )
            metrics = write_metrics_jsonl(
                registry,
                tmp_path / f"metrics-{run}.jsonl",
                summaries=observer.summary()["ops"],
            )
            payloads.append(
                (trace.read_bytes(), metrics.read_bytes())
            )
        assert payloads[0] == payloads[1]

    def test_trace_is_chrome_loadable_and_spans_close(self):
        tracer = SpanTracer()
        observer = EngineObserver(tracer=tracer, sample_interval=0.25)
        _run(_wc_plan(), observer)
        assert tracer.open_spans() == []
        doc = to_chrome_trace(
            tracer,
            process_names=observer.process_names(),
            thread_names=observer.thread_names(),
        )
        assert validate_chrome_trace(doc) == []
        cats = {e.cat for e in tracer.events}
        assert {"engine", "operator", "serve"} <= cats

    def test_time_series_sampling(self):
        interval = 0.02
        observer = EngineObserver(sample_interval=interval)
        _run(_wc_plan(), observer)
        rows = observer.registry.series
        assert rows, "sampler produced no time-series rows"
        ticks = sorted({row["t"] for row in rows})
        # Boundary-stamped: every tick except the final flush (stamped
        # at run end by on_run_end) is a multiple of the interval.
        assert all(
            abs(t / interval - round(t / interval)) < 1e-9
            for t in ticks[:-1]
        )
        assert len(ticks) >= 2
        last = [row for row in rows if row["t"] == ticks[-1]]
        total_in = sum(row["tuples_in"] for row in last)
        assert total_in == observer.summary()["totals"]["tuples_in"]


# -------------------------------------------------------- runner plumbing


class TestRunnerObservation:
    CONFIG = dict(
        repeats=2,
        dilation=25.0,
        max_tuples_per_source=400,
        max_sim_time=2.0,
        seed=3,
    )

    def test_observe_attaches_summaries(self):
        cluster = homogeneous_cluster("m510", 4)
        runner = BenchmarkRunner(
            cluster, RunnerConfig(observe=True, **self.CONFIG)
        )
        runs = runner.run_plan(runner.prepare_app("WC", 2).plan)
        for run in runs:
            assert run.observability is not None
            assert run.observability["ops"]
        merged = runner.measure(runner.prepare_app("WC", 2).plan)["obs"]
        assert merged["repeats"] == 2
        assert "sink" in merged["ops"]

    def test_observe_matches_unobserved_metrics(self):
        cluster = homogeneous_cluster("m510", 4)
        plan = BenchmarkRunner(cluster).prepare_app("WC", 2).plan
        base = BenchmarkRunner(
            cluster, RunnerConfig(**self.CONFIG)
        ).measure(plan)
        observed = BenchmarkRunner(
            cluster, RunnerConfig(observe=True, **self.CONFIG)
        ).measure(plan)
        observed.pop("obs")
        assert base == observed

    def test_invalid_sample_interval_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RunnerConfig(obs_sample_interval=0.0)


class TestMergeSummaries:
    def test_means_numeric_fields(self):
        a = {"ops": {"src": {"subtasks": 2, "tuples_in": 10}}}
        b = {"ops": {"src": {"subtasks": 2, "tuples_in": 20}}}
        merged = merge_summaries([a, b])
        assert merged["repeats"] == 2
        assert merged["ops"]["src"] == {
            "subtasks": 2,
            "tuples_in": 15.0,
        }

    def test_empty_input(self):
        assert merge_summaries([]) == {}


# ------------------------------------------------- records and datasets


class TestRecordsAndDataset:
    def _record(self):
        from repro.core.records import RunRecord

        cluster = homogeneous_cluster("m510", 4)
        runner = BenchmarkRunner(
            cluster,
            RunnerConfig(
                repeats=1,
                dilation=25.0,
                max_tuples_per_source=400,
                max_sim_time=2.0,
                seed=3,
                observe=True,
            ),
        )
        query = runner.prepare_app("WC", 2)
        metrics = runner.measure(query.plan)
        return (
            RunRecord.from_run(
                query.plan,
                cluster,
                metrics,
                workload_kind="real-world",
                event_rate=100_000.0,
            ),
            cluster,
        )

    def test_run_record_round_trips_observability(self):
        from repro.core.records import RunRecord

        record, _ = self._record()
        assert record.observability["ops"]
        assert "obs" not in record.metrics
        doc = record.to_document()
        back = RunRecord.from_document(doc)
        assert back.observability == record.observability

    def test_persist_cell_then_corpus(self):
        from repro.core.experiments.exp3 import corpus_from_run_records
        from repro.core.experiments.persist import (
            persist_cell,
            runs_collection,
        )
        from repro.core.records import RunRecord
        from repro.storage.docstore import DocumentStore

        cluster = homogeneous_cluster("m510", 4)
        runner = BenchmarkRunner(
            cluster,
            RunnerConfig(
                repeats=1,
                dilation=25.0,
                max_tuples_per_source=400,
                max_sim_time=2.0,
                seed=3,
                observe=True,
            ),
        )
        store = DocumentStore()
        query = runner.prepare_app("WC", 2)
        persist_cell(
            store,
            query.plan,
            cluster,
            runner.measure(query.plan),
            workload_kind="real-world",
            event_rate=100_000.0,
            figure="test",
            app="WC",
        )
        records = [
            RunRecord.from_document(d)
            for d in runs_collection(store).find()
        ]
        corpus = corpus_from_run_records(records, cluster)
        assert len(corpus) == 1
        matrix = corpus.observability_matrix()
        assert matrix.shape[0] == 1 and (matrix > 0).any()

    def test_runs_collection_rejects_other_types(self):
        from repro.core.experiments.persist import runs_collection

        with pytest.raises(TypeError):
            runs_collection(object())

    def test_observability_features_fixed_order(self):
        import numpy as np

        from repro.ml.dataset import (
            OBS_FEATURE_KEYS,
            observability_features,
        )

        empty = observability_features(None)
        assert empty.shape == (len(OBS_FEATURE_KEYS),)
        assert not empty.any()
        summary = {
            "ops": {
                "a": {"tuples_in": 3, "busy_s": 0.5},
                "b": {"tuples_in": 4},
            }
        }
        features = observability_features(summary)
        assert features[0] == 7  # tuples_in summed over operators
        assert features[2] == np.float64(0.5)

    def test_encode_query_carries_observability(self):
        from repro.ml.dataset import encode_query

        plan = _wc_plan()
        record = encode_query(
            plan,
            homogeneous_cluster("m510", 4),
            0.5,
            observability={"ops": {"src": {"tuples_in": 1}}},
        )
        assert record.meta["observability"]["ops"]["src"][
            "tuples_in"
        ] == 1


# ------------------------------------------------------------ trace CLI


class TestTraceCli:
    def test_trace_writes_valid_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace-out"
        code = main(
            [
                "trace",
                "--app",
                "wordcount",
                "--max-tuples",
                "400",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads((out / "trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        rows = [
            json.loads(line)
            for line in (out / "metrics.jsonl").read_text().splitlines()
        ]
        meta = rows[0]
        assert meta["kind"] == "meta" and meta["target"] == "WC"
        assert meta["results"] > 0
        captured = capsys.readouterr()
        assert "sink" in captured.out

    def test_trace_unknown_app_fails_cleanly(self, capsys):
        from repro.cli import main

        code = main(["trace", "--app", "nope", "--out", "unused"])
        assert code == 2
        assert "unknown app" in capsys.readouterr().err

    def test_app_alias_resolution(self):
        from repro.cli import _resolve_app

        assert _resolve_app("wordcount") == "WC"
        assert _resolve_app("Word Count") == "WC"
        assert _resolve_app("word-count") == "WC"
        assert _resolve_app("sg") == "SG"
        assert _resolve_app("WC") == "WC"
