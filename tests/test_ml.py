"""Tests for the ML subsystem: q-error, encodings, datasets, training."""

import numpy as np
import pytest

from repro.cluster import heterogeneous_cluster, homogeneous_cluster
from repro.common.errors import ConfigurationError, TrainingError
from repro.ml import (
    Dataset,
    EarlyStopping,
    MLManager,
    encode_query,
    q_error,
    summarize_q_errors,
)
from repro.ml.encoding import (
    FLAT_FEATURE_NAMES,
    OPERATOR_FEATURE_DIM,
    flat_features,
    graph_encoding,
    operator_features,
)
from repro.ml.models import (
    GNNCostModel,
    LinearRegressionModel,
    MLPCostModel,
    RandomForestModel,
)
from repro.ml.qerror import q_errors
from repro.ml.training import Adam, Standardizer
from repro.storage import DocumentStore
from repro.workload import QueryStructure, build_structure


class TestQError:
    def test_perfect_prediction(self):
        assert q_error(5.0, 5.0) == 1.0

    def test_symmetric(self):
        assert q_error(2.0, 8.0) == q_error(8.0, 2.0) == 4.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            q_error(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            q_error(1.0, -2.0)

    def test_vectorised(self):
        errors = q_errors(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        assert errors.tolist() == [2.0, 2.0]

    def test_summary(self):
        summary = summarize_q_errors(
            np.array([1.0, 1.0, 1.0, 1.0]),
            np.array([1.0, 2.0, 1.0, 4.0]),
        )
        assert summary["median"] == pytest.approx(1.5)
        assert summary["max"] == 4.0
        assert summary["count"] == 4

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            q_errors(np.array([1.0]), np.array([1.0, 2.0]))


def _query(structure=QueryStructure.TWO_WAY_JOIN, seed=0, rate=10_000.0):
    return build_structure(
        structure, np.random.default_rng(seed), event_rate=rate
    )


class TestEncodings:
    cluster = homogeneous_cluster(num_nodes=4)

    def test_operator_features_dim(self):
        plan = _query().plan
        for op in plan.operators.values():
            assert operator_features(op).shape == (OPERATOR_FEATURE_DIM,)

    def test_parallelism_feature_responds(self):
        plan = _query().plan
        op = plan.operator("join0")
        before = operator_features(op).copy()
        op.parallelism = 16
        after = operator_features(op)
        assert not np.allclose(before, after)

    def test_flat_features_shape_and_names(self):
        vector = flat_features(_query().plan, self.cluster)
        assert vector.shape == (len(FLAT_FEATURE_NAMES),)
        assert np.isfinite(vector).all()

    def test_flat_distinguishes_clusters(self):
        plan = _query().plan
        homogeneous = flat_features(plan, self.cluster)
        heterogeneous = flat_features(
            plan, heterogeneous_cluster(num_nodes=4)
        )
        assert not np.allclose(homogeneous, heterogeneous)

    def test_graph_encoding_shapes(self):
        plan = _query().plan
        x, a_in, a_out, globals_vec = graph_encoding(plan, self.cluster)
        n = plan.num_operators
        assert x.shape == (n, OPERATOR_FEATURE_DIM)
        assert a_in.shape == a_out.shape == (n, n)
        assert globals_vec.shape == (5,)

    def test_adjacency_row_normalised(self):
        plan = _query(QueryStructure.THREE_WAY_JOIN).plan
        _, a_in, a_out, _ = graph_encoding(plan, self.cluster)
        for matrix in (a_in, a_out):
            sums = matrix.sum(axis=1)
            assert np.all(
                (np.abs(sums - 1.0) < 1e-9) | (np.abs(sums) < 1e-9)
            )

    def test_adjacency_matches_edges(self):
        plan = _query().plan
        order = plan.topological_order()
        index = {op: i for i, op in enumerate(order)}
        _, a_in, _, _ = graph_encoding(plan, self.cluster)
        for edge in plan.edges:
            assert a_in[index[edge.dst], index[edge.src]] > 0


class TestDataset:
    cluster = homogeneous_cluster(num_nodes=2)

    def _records(self, n=20):
        records = []
        for i in range(n):
            query = _query(seed=i)
            records.append(
                encode_query(
                    query.plan,
                    self.cluster,
                    latency_s=0.1 + 0.01 * i,
                    structure=query.structure.value,
                )
            )
        return records

    def test_rejects_nonpositive_latency(self):
        query = _query()
        with pytest.raises(TrainingError):
            encode_query(query.plan, self.cluster, latency_s=0.0)

    def test_split_partitions(self, rng):
        dataset = Dataset(self._records(20))
        train, val, test = dataset.split(rng)
        assert len(train) + len(val) + len(test) == 20
        assert len(train) > len(val) >= 1

    def test_split_too_small(self, rng):
        with pytest.raises(TrainingError):
            Dataset(self._records(3)).split(rng)

    def test_flat_matrix_log_target(self):
        dataset = Dataset(self._records(5))
        x, y = dataset.flat_matrix()
        assert x.shape[0] == 5
        assert y[0] == pytest.approx(np.log(0.1))

    def test_filter_structure(self):
        dataset = Dataset(self._records(6))
        subset = dataset.filter_structure({"two_way_join"})
        assert len(subset) == 6
        with pytest.raises(TrainingError):
            dataset.filter_structure({"nonexistent"})

    def test_docstore_roundtrip(self):
        store = DocumentStore()
        dataset = Dataset(self._records(4))
        dataset.save(store["corpus"])
        loaded = Dataset.load(store["corpus"])
        assert len(loaded) == 4
        assert np.allclose(
            loaded.records[0].flat, dataset.records[0].flat
        )
        assert loaded.records[0].latency_s == pytest.approx(
            dataset.records[0].latency_s
        )

    def test_load_empty_collection(self):
        store = DocumentStore()
        with pytest.raises(TrainingError):
            Dataset.load(store["empty"])


class TestTrainingUtilities:
    def test_early_stopping_stops_after_patience(self):
        stopper = EarlyStopping(patience=3)
        assert not stopper.step(1.0, 0)
        assert stopper.should_snapshot
        assert not stopper.step(1.1, 1)
        assert not stopper.step(1.2, 2)
        assert stopper.step(1.3, 3)  # third stale epoch
        assert stopper.best_epoch == 0

    def test_early_stopping_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2)
        stopper.step(1.0, 0)
        stopper.step(1.1, 1)
        assert not stopper.step(0.5, 2)  # improvement resets counter
        assert not stopper.step(0.6, 3)
        assert stopper.step(0.7, 4)

    def test_adam_reduces_quadratic(self):
        params = {"w": np.array([5.0])}
        optimizer = Adam(params, lr=0.1)
        for _ in range(200):
            optimizer.step({"w": 2.0 * params["w"]})
        assert abs(params["w"][0]) < 0.1

    def test_adam_unknown_param(self):
        optimizer = Adam({"w": np.zeros(1)})
        with pytest.raises(ConfigurationError):
            optimizer.step({"v": np.zeros(1)})

    def test_standardizer(self):
        x = np.array([[1.0, 10.0], [3.0, 10.0]])
        scaler = Standardizer().fit(x)
        z = scaler.transform(x)
        assert np.allclose(z.mean(axis=0), 0.0)
        assert np.allclose(z[:, 1], 0.0)  # constant column stays finite

    def test_standardizer_unfitted(self):
        with pytest.raises(ConfigurationError):
            Standardizer().transform(np.zeros((2, 2)))


def _labelled_dataset(n=60, seed=0):
    """Synthetic corpus with a learnable latency signal."""
    cluster = homogeneous_cluster(num_nodes=4)
    from repro.sps.analytic import AnalyticEstimator

    estimator = AnalyticEstimator(cluster)
    rng = np.random.default_rng(seed)
    records = []
    structures = list(QueryStructure)
    for i in range(n):
        query = _query(structures[i % len(structures)], seed=i)
        latency = estimator.noisy_latency(query.plan, rng, cv=0.05)
        records.append(
            encode_query(
                query.plan, cluster, latency,
                structure=query.structure.value,
            )
        )
    return Dataset(records)


class TestModels:
    @pytest.mark.parametrize(
        "model_cls",
        [
            LinearRegressionModel,
            MLPCostModel,
            RandomForestModel,
            GNNCostModel,
        ],
    )
    def test_fit_predict_beats_trivial(self, model_cls, rng):
        dataset = _labelled_dataset(60)
        train, val, test = dataset.split(rng)
        model = model_cls()
        result = model.fit(train, val, seed=0)
        assert result.train_time_s >= 0
        assert result.epochs >= 1
        assert model.num_parameters() > 0
        predictions = model.predict(test)
        assert predictions.shape == (len(test),)
        assert (predictions > 0).all()
        summary = model.evaluate(test)
        # Trivial "predict the median" gives far worse than this bound
        # on a corpus spanning orders of magnitude.
        assert summary["median"] < 4.0

    def test_predict_before_fit_raises(self):
        dataset = _labelled_dataset(10)
        for model in (
            LinearRegressionModel(),
            MLPCostModel(),
            RandomForestModel(),
            GNNCostModel(),
        ):
            with pytest.raises(TrainingError):
                model.predict(dataset)

    def test_mlp_early_stopping_bounded(self, rng):
        dataset = _labelled_dataset(40)
        train, val, _ = dataset.split(rng)
        model = MLPCostModel(max_epochs=500, patience=5)
        result = model.fit(train, val, seed=0)
        assert result.epochs <= 500
        assert len(result.val_losses) == result.epochs

    def test_forest_tree_count_bounded(self, rng):
        dataset = _labelled_dataset(40)
        train, val, _ = dataset.split(rng)
        model = RandomForestModel(max_trees=20, patience=4)
        model.fit(train, val, seed=0)
        assert 1 <= len(model.trees) <= 20


class TestMLManager:
    def test_fair_comparison_all_models(self):
        dataset = _labelled_dataset(60)
        manager = MLManager(seed=0)
        reports = manager.train_and_evaluate(dataset)
        assert set(reports) == {"LR", "MLP", "RF", "GNN"}
        for report in reports.values():
            assert report.q_error["median"] >= 1.0
            assert report.training.train_samples > 0
            assert report.per_structure

    def test_external_test_set(self):
        train_corpus = _labelled_dataset(50, seed=0)
        test_corpus = _labelled_dataset(20, seed=99)
        manager = MLManager(
            models=[LinearRegressionModel()], seed=0
        )
        reports = manager.train_and_evaluate(
            train_corpus, test=test_corpus
        )
        assert reports["LR"].q_error["count"] == 20

    def test_duplicate_model_names_rejected(self):
        with pytest.raises(TrainingError):
            MLManager(
                models=[LinearRegressionModel(), LinearRegressionModel()]
            )

    def test_model_lookup(self):
        manager = MLManager(seed=0)
        assert manager.model("GNN").name == "GNN"
        with pytest.raises(TrainingError):
            manager.model("SVM")
