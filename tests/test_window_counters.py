"""Pinned per-app window counters across the full app registry.

PR 5 rewrote the window operators around slice-based incremental
aggregation and heap-scheduled firing with a *bit-identical* contract:
every application plan must fire exactly the same windows and emit
exactly the same join matches as the per-window buffering
implementation it replaced. This pins ``windows_fired`` /
``matches_emitted`` (plus events and results) for all 14 registered
apps at a fixed configuration, so any semantic drift in windowing shows
up as a counter change even in apps the golden suite does not cover.

Recapture recipe (only for *intentional* semantic changes): run each
app through ``BenchmarkRunner.prepare_app(abbrev, 2)`` on a 4-node m510
cluster and a ``StreamEngine`` with ``SimulationConfig(1200, 3.0)`` and
``RngFactory(11)``, then sum the counters over all runtimes (including
chained ``.logics`` members).

Note: the SA pin reflects the deterministic word-table fix in
:mod:`repro.apps.sentiment` (sorted sentiment vocabularies); before it,
SA's tweet stream varied with ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import repro.apps as apps
from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.sps.engine import SimulationConfig, StreamEngine

#: abbrev -> (events_processed, results, windows_fired, matches_emitted)
PINNED = {
    "AD": (13164, 31, 31, 403),
    "BI": (18598, 848, 341, 1454),
    "CA": (10018, 204, 204, 0),
    "FD": (7667, 53, 0, 0),
    "LP": (10095, 6, 6, 0),
    "LR": (6901, 45, 383, 0),
    "MO": (8409, 3, 0, 0),
    "SA": (10426, 406, 406, 0),
    "SD": (6069, 23, 0, 0),
    "SG": (8100, 290, 0, 0),
    "TM": (12001, 66, 1288, 0),
    "TPCH": (9343, 4, 4, 0),
    "TQ": (13290, 40, 2378, 0),
    "WC": (21880, 26, 26, 0),
}


def _logic_counters(engine: StreamEngine) -> tuple[int, int]:
    fired = 0
    matched = 0
    for runtime in engine._runtimes:
        logic = runtime.logic
        members = getattr(logic, "logics", None) or (logic,)
        for member in members:
            fired += getattr(member, "windows_fired", 0)
            matched += getattr(member, "matches_emitted", 0)
    return fired, matched


def test_registry_is_fully_pinned():
    assert sorted(apps.REGISTRY) == sorted(PINNED)


def test_window_counters_match_pins():
    cluster = homogeneous_cluster("m510", 4)
    runner = BenchmarkRunner(
        cluster,
        RunnerConfig(
            repeats=1,
            dilation=25.0,
            max_tuples_per_source=1200,
            max_sim_time=3.0,
            seed=11,
        ),
    )
    mismatches = []
    for abbrev in sorted(PINNED):
        query = runner.prepare_app(abbrev, 2)
        engine = StreamEngine(
            query.plan,
            cluster,
            config=SimulationConfig(
                max_tuples_per_source=1200, max_sim_time=3.0
            ),
            rng_factory=RngFactory(11),
        )
        metrics = engine.run()
        fired, matched = _logic_counters(engine)
        got = (
            metrics.extras["events_processed"],
            metrics.results,
            fired,
            matched,
        )
        if got != PINNED[abbrev]:
            mismatches.append((abbrev, got, PINNED[abbrev]))
    assert not mismatches, mismatches
