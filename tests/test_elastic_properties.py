"""Property-based equivalence tests for the elastic runtime.

The rescale protocol's core promises, checked over randomized seeds,
degrees and reconfiguration times:

- a run that rescales a *stateless* operator produces exactly the same
  multiset of sink values as the fixed-parallelism run (routing moves
  tuples, never changes or drops them);
- a keyed windowed aggregate loses no state across migration: per-key
  totals match the fixed run, and the window counts sum to the exact
  number of tuples emitted (conservation), including across *multiple*
  generations of rescaling.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.core.experiments.exp4 import elastic_workload_plan
from repro.sps import builders
from repro.sps.engine import RescaleEvent, SimulationConfig, StreamEngine
from repro.sps.operators.sink import SinkLogic
from repro.sps.partitioning import HashPartitioner, RebalancePartitioner
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])

#: 1200 tuples at 3000 ev/s span ~0.4 simulated seconds, so rescale
#: times are drawn from [0.05, 0.3] to land inside the run.
_TUPLES = 1200
_RATE = 3000.0


def _negate(values):
    """Stateless per-tuple transform for the equivalence plans."""
    return (values[0], -values[1])


def _stateless_plan(parallelism: int):
    """src -> map -> sink with explicit non-forward partitioners.

    Hash in and rebalance out keep the map rescalable at *any* degree
    (forward edges would pin its parallelism).
    """
    from repro.sps.logical import LogicalPlan

    plan = LogicalPlan("prop-stateless")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=_RATE
        )
    )
    plan.add_operator(
        builders.map_op("neg", _negate, parallelism=parallelism)
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "neg", partitioner=HashPartitioner(key_field=0))
    plan.connect("neg", "sink", partitioner=RebalancePartitioner())
    return plan


def _run(plan, rescales, seed):
    engine = StreamEngine(
        plan,
        homogeneous_cluster(num_nodes=4),
        config=SimulationConfig(
            max_tuples_per_source=_TUPLES,
            max_sim_time=4.0,
            warmup_fraction=0.0,
            keep_sink_values=True,
            rescales=tuple(rescales),
        ),
        rng_factory=RngFactory(seed),
    )
    metrics = engine.run()
    values = [
        v
        for rt in engine._runtimes
        if isinstance(rt.logic, SinkLogic)
        for v in rt.logic.results
    ]
    return metrics, values


class TestStatelessEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        initial=st.integers(min_value=1, max_value=3),
        target=st.integers(min_value=1, max_value=5),
        at=st.floats(min_value=0.05, max_value=0.3),
    )
    @settings(max_examples=12, deadline=None)
    def test_rescaled_map_equals_fixed_run(
        self, seed, initial, target, at
    ):
        """Rescaling a stateless map mid-run changes nothing about the

        value multiset the sink collects."""
        _, fixed = _run(_stateless_plan(initial), (), seed)
        _, rescaled = _run(
            _stateless_plan(initial),
            (RescaleEvent(at, "neg", target),),
            seed,
        )
        assert Counter(rescaled) == Counter(fixed)
        assert len(fixed) == _TUPLES


class TestKeyedStatePreservation:
    @staticmethod
    def _totals(values) -> Counter:
        totals: Counter = Counter()
        for key, count in values:
            totals[key] += count
        return totals

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        target=st.integers(min_value=1, max_value=6),
        at=st.floats(min_value=0.05, max_value=0.3),
    )
    @settings(max_examples=10, deadline=None)
    def test_migration_preserves_per_key_totals(self, seed, target, at):
        """A keyed windowed COUNT migrated to any degree accounts for

        exactly the same tuples per key as the fixed-parallelism run."""
        plan_kwargs = {"agg_cost_scale": 1.0, "num_keys": 8}
        _, fixed = _run(
            elastic_workload_plan(parallelism=2, **plan_kwargs),
            (),
            seed,
        )
        metrics, rescaled = _run(
            elastic_workload_plan(parallelism=2, **plan_kwargs),
            (RescaleEvent(at, "agg", target),),
            seed,
        )
        assert self._totals(rescaled) == self._totals(fixed)
        assert sum(c for _, c in rescaled) == metrics.source_events

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        first=st.integers(min_value=1, max_value=6),
        second=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=10, deadline=None)
    def test_two_generations_of_rescaling_conserve(
        self, seed, first, second
    ):
        """Conservation survives repeated reconfiguration — the second

        rescale migrates state owned by subtasks the placement never
        saw, which must inherit their donors' slots."""
        plan_kwargs = {"agg_cost_scale": 1.0, "num_keys": 8}
        metrics, values = _run(
            elastic_workload_plan(parallelism=2, **plan_kwargs),
            (
                RescaleEvent(0.1, "agg", first),
                RescaleEvent(0.25, "agg", second),
            ),
            seed,
        )
        assert sum(c for _, c in values) == metrics.source_events
        assert metrics.source_events == _TUPLES
