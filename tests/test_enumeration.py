"""Tests for the six parallelism enumeration strategies (Section 3.1)."""

import numpy as np
import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.sps.logical import OperatorKind
from repro.workload import (
    ExhaustiveEnumeration,
    IncreasingEnumeration,
    MinAvgMaxEnumeration,
    ParameterBasedEnumeration,
    RandomEnumeration,
    RuleBasedEnumeration,
    build_structure,
    strategy_by_name,
)
from repro.workload.parameter_space import ParameterSpace
from repro.workload.querygen import QueryStructure


@pytest.fixture
def plan(rng):
    return build_structure(
        QueryStructure.TWO_WAY_JOIN, rng, event_rate=100_000.0
    ).plan


@pytest.fixture
def cluster():
    return homogeneous_cluster("m510", 10)  # 80 cores


def take(strategy, plan, cluster, n, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    iterator = strategy.assignments(plan, cluster, rng)
    for _ in range(n):
        out.append(next(iterator))
    return out


class TestRandom:
    def test_degrees_within_cluster_cap(self, plan, cluster):
        for assignment in take(RandomEnumeration(), plan, cluster, 20):
            assert all(1 <= d <= 80 for d in assignment.values())

    def test_covers_multiple_degrees(self, plan, cluster):
        seen = set()
        for assignment in take(RandomEnumeration(), plan, cluster, 30):
            seen.update(assignment.values())
        assert len(seen) >= 4

    def test_sink_not_scaled(self, plan, cluster):
        assignment = take(RandomEnumeration(), plan, cluster, 1)[0]
        assert "sink" not in assignment


class TestRuleBased:
    def test_degrees_track_load(self, plan, cluster):
        strategy = RuleBasedEnumeration(exploration=0.0)
        base = strategy.required_degrees(plan, cluster)
        # Joins carry ~200k tuples/s at 14us each: needs several cores.
        assert base["join0"] > base["src0"]
        assert base["sink"] == 1

    def test_higher_rate_more_instances(self, cluster, rng):
        strategy = RuleBasedEnumeration(exploration=0.0)
        low = build_structure(
            QueryStructure.LINEAR, np.random.default_rng(1),
            event_rate=1_000.0,
        ).plan
        high = build_structure(
            QueryStructure.LINEAR, np.random.default_rng(1),
            event_rate=2_000_000.0,
        ).plan
        low_d = strategy.required_degrees(low, cluster)
        high_d = strategy.required_degrees(high, cluster)
        assert sum(high_d.values()) > sum(low_d.values())

    def test_jitter_produces_variants(self, plan, cluster):
        assignments = take(
            RuleBasedEnumeration(exploration=0.5), plan, cluster, 10
        )
        distinct = {tuple(sorted(a.items())) for a in assignments}
        assert len(distinct) > 1

    def test_capped_by_cluster(self, cluster):
        plan = build_structure(
            QueryStructure.FIVE_WAY_JOIN,
            np.random.default_rng(2),
            event_rate=4_000_000.0,
        ).plan
        degrees = RuleBasedEnumeration(
            exploration=0.0
        ).required_degrees(plan, cluster)
        assert all(d <= 80 for d in degrees.values())

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RuleBasedEnumeration(target_utilization=0.0)
        with pytest.raises(ConfigurationError):
            RuleBasedEnumeration(exploration=-1.0)


class TestExhaustive:
    def test_covers_cartesian_product(self, plan, cluster):
        strategy = ExhaustiveEnumeration(candidate_degrees=(1, 2))
        scalable = [
            op.op_id
            for op in plan.operators.values()
            if op.kind is not OperatorKind.SINK
        ]
        assignments = take(strategy, plan, cluster, 2 ** len(scalable))
        distinct = {tuple(sorted(a.items())) for a in assignments}
        assert len(distinct) == 2 ** len(scalable)

    def test_exhausts(self, plan, cluster):
        strategy = ExhaustiveEnumeration(candidate_degrees=(1,))
        rng = np.random.default_rng(0)
        assignments = list(strategy.assignments(plan, cluster, rng))
        assert len(assignments) == 1


class TestMinAvgMax:
    def test_cycle(self, plan, cluster):
        space = ParameterSpace(parallelism_degrees=(1, 2, 4, 8, 16))
        assignments = take(
            MinAvgMaxEnumeration(space), plan, cluster, 6
        )
        uniform = [set(a.values()).pop() for a in assignments]
        assert uniform == [1, 4, 16, 1, 4, 16]


class TestIncreasing:
    def test_steps_up_then_cycles(self, plan, cluster):
        space = ParameterSpace(parallelism_degrees=(1, 2, 4))
        assignments = take(
            IncreasingEnumeration(space), plan, cluster, 5
        )
        uniform = [set(a.values()).pop() for a in assignments]
        assert uniform == [1, 2, 4, 1, 2]


class TestParameterBased:
    def test_uniform_degree(self, plan, cluster):
        assignments = take(
            ParameterBasedEnumeration(6), plan, cluster, 2
        )
        assert all(
            all(d == 6 for d in a.values()) for a in assignments
        )

    def test_explicit_dict(self, plan, cluster):
        degrees = {
            op.op_id: 2
            for op in plan.operators.values()
            if op.kind is not OperatorKind.SINK
        }
        degrees["join0"] = 8
        assignment = take(
            ParameterBasedEnumeration(degrees), plan, cluster, 1
        )[0]
        assert assignment["join0"] == 8

    def test_missing_operator_rejected(self, plan, cluster):
        strategy = ParameterBasedEnumeration({"join0": 2})
        with pytest.raises(ConfigurationError, match="missing"):
            take(strategy, plan, cluster, 1)


class TestStrategyByName:
    def test_all_names_resolve(self):
        for name in (
            "random",
            "rule-based",
            "exhaustive",
            "min-avg-max",
            "increasing",
        ):
            assert strategy_by_name(name).name == name

    def test_parameter_based_needs_degrees(self):
        strategy = strategy_by_name("parameter-based", degrees=4)
        assert strategy.degrees == 4

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            strategy_by_name("oracle")
