"""Golden determinism tests for the simulation engine.

The hot-path optimizations in :mod:`repro.sps.engine` (precompiled
routing tables, precomputed arrival state, the idle-server fast path)
must not change any simulated result. These tests pin that down three
ways:

1. running the same configuration twice yields *identical* metrics
   dictionaries (no hidden global state, no iteration-order dependence);
2. a set of hardcoded golden values — captured from the straightforward
   pre-optimization implementation (with the sender-overhead accounting
   fix applied) — still comes out, to 1e-9 relative precision;
3. the parallel fan-out returns exactly what the serial loop returns.

If an intentional semantic change (e.g. a new cost term) breaks the
golden values, re-capture them with the recipe in the comments below —
but never to paper over an unintended drift.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import homogeneous_cluster
from repro.core.runner import BenchmarkRunner, RunnerConfig

#: The apps pinned by the goldens: WC exercises keyed aggregation over a
#: hash shuffle, SG a UDO pipeline, AD a windowed join with broadcast.
GOLDEN_APPS = ("WC", "SG", "AD")

#: Recipe: runner config of the golden capture. Any change here
#: invalidates the GOLDEN fixture below.
GOLDEN_CONFIG = dict(
    repeats=2,
    dilation=25.0,
    max_tuples_per_source=1200,
    max_sim_time=3.0,
    seed=11,
)
GOLDEN_PARALLELISM = 2

#: Per-app, per-repeat (events_processed, results, mean latency s),
#: captured from the pre-optimization engine at the config above on a
#: 4-node m510 cluster.
GOLDEN = {
    "WC": [
        (21668, 26, 0.3073962555162742),
        (21678, 26, 0.30299855748393417),
    ],
    "SG": [
        (8076, 286, 5.074298783458579),
        (8124, 294, 5.3499872773414765),
    ],
    "AD": [
        (13284, 39, 0.2657859812496416),
        (13571, 56, 0.2913737970757395),
    ],
}


def _run_all(workers: int = 1) -> dict[str, list[dict]]:
    cluster = homogeneous_cluster("m510", 4)
    runner = BenchmarkRunner(
        cluster, RunnerConfig(**GOLDEN_CONFIG, workers=workers)
    )
    out = {}
    for abbrev in GOLDEN_APPS:
        query = runner.prepare_app(abbrev, GOLDEN_PARALLELISM)
        out[abbrev] = [run.to_dict() for run in runner.run_plan(query.plan)]
    return out


def test_run_twice_is_bit_identical():
    first = _run_all()
    second = _run_all()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_golden_values_hold():
    results = _run_all()
    for abbrev, repeats in GOLDEN.items():
        for i, (events, num_results, mean_latency) in enumerate(repeats):
            run = results[abbrev][i]
            assert run["extras"]["events_processed"] == events, (
                abbrev,
                i,
            )
            assert run["results"] == num_results, (abbrev, i)
            assert run["latency"]["mean"] == pytest.approx(
                mean_latency, rel=1e-9
            ), (abbrev, i)


def test_parallel_fanout_matches_serial():
    serial = _run_all(workers=1)
    parallel = _run_all(workers=4)
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )


#: The contract of ``extras["ft"]`` for checkpointed runs: exactly
#: these keys, in any order. Downstream consumers (exp5, the CI
#: recovery-smoke assertions, bench_ft_overhead) index into this dict,
#: so renaming or dropping a key is a breaking change this test pins.
FT_EXTRAS_KEYS = {
    "delivery",
    "checkpoint_interval",
    "checkpoints_completed",
    "checkpoints_skipped",
    "checkpoint_duration_mean_s",
    "state_items",
    "state_bytes",
    "recoveries",
    "recovery_time_s",
    "replayed_events",
    "duplicates_dropped",
    "duplicate_results",
    "lost_results",
    "log",
}

FT_LOG_ENTRY_KEYS = {
    "ckpt_id",
    "triggered_at",
    "duration_s",
    "state_items",
    "state_bytes",
}


def test_checkpointed_run_pins_ft_extras_schema():
    """A checkpointed golden-config run carries the pinned ft extras."""
    cluster = homogeneous_cluster("m510", 4)
    runner = BenchmarkRunner(
        cluster,
        RunnerConfig(**{**GOLDEN_CONFIG, "repeats": 1}, checkpoint_ms=250.0),
    )
    query = runner.prepare_app("WC", GOLDEN_PARALLELISM)
    first = runner.run_plan(query.plan)[0].to_dict()
    second = runner.run_plan(query.plan)[0].to_dict()
    ft = first["extras"]["ft"]
    assert set(ft) == FT_EXTRAS_KEYS
    assert ft["delivery"] == "exactly_once"
    assert ft["checkpoints_completed"] >= 1
    assert ft["recoveries"] == 0
    for entry in ft["log"]:
        assert set(entry) == FT_LOG_ENTRY_KEYS
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_checkpointing_off_keeps_golden_values():
    """``checkpoint_ms=None`` must leave the golden runs bit-identical
    (the FT code paths are attribute-indirected away when off)."""
    cluster = homogeneous_cluster("m510", 4)
    baseline = BenchmarkRunner(cluster, RunnerConfig(**GOLDEN_CONFIG))
    explicit = BenchmarkRunner(
        cluster,
        RunnerConfig(
            **GOLDEN_CONFIG, checkpoint_ms=None, delivery="exactly_once"
        ),
    )
    query_a = baseline.prepare_app("WC", GOLDEN_PARALLELISM)
    query_b = explicit.prepare_app("WC", GOLDEN_PARALLELISM)
    runs_a = [r.to_dict() for r in baseline.run_plan(query_a.plan)]
    runs_b = [r.to_dict() for r in explicit.run_plan(query_b.plan)]
    assert json.dumps(runs_a, sort_keys=True) == json.dumps(
        runs_b, sort_keys=True
    )
