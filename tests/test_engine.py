"""Tests for the discrete-event engine: correctness and queueing behaviour."""

import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def run_plan(plan, cluster=None, tuples=600, seed=3, **cfg):
    cluster = cluster or homogeneous_cluster(num_nodes=2)
    cfg.setdefault("max_sim_time", 5.0)
    config = SimulationConfig(max_tuples_per_source=tuples, **cfg)
    engine = StreamEngine(
        plan, cluster, config=config, rng_factory=RngFactory(seed)
    )
    return engine.run()


def passthrough_plan(rate=1000.0, parallelism=1):
    plan = LogicalPlan("pass")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=rate,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "sink")
    return plan


class TestBasicExecution:
    def test_all_tuples_reach_sink(self):
        metrics = run_plan(passthrough_plan(), tuples=500,
                           warmup_fraction=0.0)
        assert metrics.results == 500
        assert metrics.source_events == 500

    def test_latencies_positive(self):
        metrics = run_plan(passthrough_plan())
        assert metrics.latency.minimum > 0
        assert metrics.latency.p50 >= metrics.latency.minimum
        assert metrics.latency.p95 >= metrics.latency.p50

    def test_parallel_source_splits_budget(self):
        metrics = run_plan(
            passthrough_plan(parallelism=4), tuples=400,
            warmup_fraction=0.0,
        )
        assert metrics.source_events == 400

    def test_deterministic_given_seed(self):
        a = run_plan(passthrough_plan(), seed=11)
        b = run_plan(passthrough_plan(), seed=11)
        assert a.latency.p50 == b.latency.p50
        assert a.results == b.results

    def test_seeds_differ(self):
        a = run_plan(passthrough_plan(), seed=11)
        b = run_plan(passthrough_plan(), seed=12)
        assert a.latency.p50 != b.latency.p50

    def test_warmup_drops_samples(self):
        full = run_plan(passthrough_plan(), warmup_fraction=0.0)
        trimmed = run_plan(passthrough_plan(), warmup_fraction=0.5)
        assert trimmed.latency.count < full.latency.count

    def test_filter_selectivity_realized(self):
        plan = LogicalPlan("filtered")
        plan.add_operator(
            builders.source("src", kv_generator(), SCHEMA,
                            event_rate=1000.0)
        )
        plan.add_operator(
            builders.filter_op(
                "flt",
                Predicate(1, FilterFunction.GT, 0.5,
                          selectivity_hint=0.5),
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "flt")
        plan.connect("flt", "sink")
        metrics = run_plan(plan, tuples=2000, warmup_fraction=0.0)
        # ~50% of uniform [0,1) values pass the > 0.5 filter.
        assert 0.4 < metrics.results / metrics.source_events < 0.6

    def test_windowed_aggregation_end_to_end(self, simple_plan):
        metrics = run_plan(simple_plan, tuples=2000, warmup_fraction=0.0)
        assert metrics.results > 10
        # Window time (100ms) is part of end-to-end latency.
        assert metrics.latency.p50 > 0.02

    def test_utilization_reported_per_operator(self, simple_plan):
        metrics = run_plan(simple_plan, tuples=800)
        assert set(metrics.operator_utilization) == {
            "src", "flt", "agg", "sink",
        }
        assert all(
            0 <= u <= 1.5 for u in metrics.operator_utilization.values()
        )

    def test_queue_peaks_reported(self, simple_plan):
        metrics = run_plan(simple_plan, tuples=800)
        assert all(v >= 0 for v in metrics.operator_queue_peak.values())


class TestQueueingBehaviour:
    def _heavy_plan(self, rate, parallelism):
        plan = LogicalPlan("heavy")
        plan.add_operator(
            builders.source("src", kv_generator(), SCHEMA,
                            event_rate=rate)
        )
        heavy = builders.udo(
            "udo",
            lambda: __import__(
                "repro.sps.operators.udo", fromlist=["FunctionUDO"]
            ).FunctionUDO(lambda state, t, now: [t]),
            parallelism=parallelism,
            cost_scale=10.0,  # 400us/tuple: saturates 1 core at 2.5k/s
        )
        plan.add_operator(heavy)
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "udo")
        plan.connect("udo", "sink")
        return plan

    def test_saturation_raises_latency(self):
        light = run_plan(self._heavy_plan(rate=1000, parallelism=1),
                         tuples=1500)
        saturated = run_plan(self._heavy_plan(rate=6000, parallelism=1),
                             tuples=1500)
        assert saturated.latency.p50 > 5 * light.latency.p50

    def test_parallelism_relieves_saturation(self):
        slow = run_plan(self._heavy_plan(rate=6000, parallelism=1),
                        tuples=1500)
        fast = run_plan(self._heavy_plan(rate=6000, parallelism=4),
                        tuples=1500)
        assert fast.latency.p50 < slow.latency.p50 / 2

    def test_arrival_processes(self):
        for arrival in ("poisson", "constant", "bursty"):
            plan = LogicalPlan(f"arrivals-{arrival}")
            plan.add_operator(
                builders.source(
                    "src", kv_generator(), SCHEMA, event_rate=2000.0,
                    arrival=arrival,
                )
            )
            plan.add_operator(builders.sink("sink"))
            plan.connect("src", "sink")
            metrics = run_plan(plan, tuples=500, warmup_fraction=0.0)
            assert metrics.results == 500

    def test_unknown_arrival_rejected(self):
        plan = LogicalPlan("bad-arrival")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), SCHEMA, event_rate=100.0,
                arrival="fractal",
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "sink")
        with pytest.raises(ConfigurationError, match="arrival"):
            run_plan(plan, tuples=10)


class TestTermination:
    def test_time_windows_flush_at_end(self):
        plan = LogicalPlan("flush")
        plan.add_operator(
            builders.source("src", kv_generator(), SCHEMA,
                            event_rate=100.0)
        )
        # 10s windows never complete within the run: only flush emits.
        plan.add_operator(
            builders.window_agg(
                "agg",
                TumblingTimeWindows(10.0),
                AggregateFunction.COUNT,
                value_field=1,
                key_field=0,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "agg")
        plan.connect("agg", "sink")
        metrics = run_plan(plan, tuples=100, warmup_fraction=0.0)
        assert metrics.results > 0

    def test_sim_time_horizon_caps_run(self):
        plan = passthrough_plan(rate=10.0)  # 1000 tuples would need 100s
        metrics = run_plan(
            plan, tuples=1000, max_sim_time=1.0, warmup_fraction=0.0
        )
        assert metrics.source_events < 1000
        assert metrics.sim_duration <= 1.5

    def test_event_budget_guard(self):
        plan = passthrough_plan(rate=5000.0)
        config = SimulationConfig(
            max_tuples_per_source=5000, max_events=100
        )
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=1),
            config=config,
            rng_factory=RngFactory(0),
        )
        with pytest.raises(SimulationError, match="budget"):
            engine.run()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_tuples_per_source=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_sim_time=0.0)
