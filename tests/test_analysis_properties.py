"""Property-based tests: the generator and the analyzer agree.

Two directions:

- Every plan the workload generator + parallelism enumerators produce
  over the paper's parameter space passes pre-flight with zero ERRORs —
  the corpus can never contain a malformed PQP.
- Targeted mutations of a valid plan (drop an edge, break a join key
  type, oversubscribe the cluster) each trigger the expected rule code —
  the analyzer is not vacuously happy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity, analyze_plan
from repro.cluster.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.sps.logical import OperatorKind
from repro.sps.partitioning import HashPartitioner
from repro.sps.types import DataType, Field, Schema
from repro.workload.enumeration import (
    MinAvgMaxEnumeration,
    RandomEnumeration,
    RuleBasedEnumeration,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.parameter_space import ParameterSpace
from repro.workload.querygen import QueryStructure, build_structure

CLUSTER = homogeneous_cluster("m510", num_nodes=10)

STRATEGIES = {
    "rule": RuleBasedEnumeration,
    "random": RandomEnumeration,
    "minavgmax": MinAvgMaxEnumeration,
}


class TestGeneratedPlansAreClean:
    @given(
        structure=st.sampled_from(list(QueryStructure)),
        seed=st.integers(min_value=0, max_value=2**16),
        strategy=st.sampled_from(sorted(STRATEGIES)),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_plan_has_zero_errors(
        self, structure, seed, strategy
    ):
        space = ParameterSpace()
        rng = RngFactory(seed).fresh("prop", structure.value)
        query = build_structure(structure, rng, space, None)
        strategy_cls = STRATEGIES[strategy]
        assignment = next(
            strategy_cls(space).assignments(query.plan, CLUSTER, rng)
        )
        query.plan.set_parallelism(assignment)
        report = analyze_plan(query.plan, cluster=CLUSTER)
        assert not report.has_errors, report.format()

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_generator_facade_emits_clean_batches(self, seed):
        generator = WorkloadGenerator(seed=seed)
        queries = generator.generate(CLUSTER, count=4)
        assert len(queries) == 4
        assert generator.rejected_total == 0
        for query in queries:
            report = analyze_plan(query.plan, cluster=CLUSTER)
            assert not report.has_errors, report.format()


def _fresh_query(seed, structure=QueryStructure.TWO_WAY_JOIN):
    rng = RngFactory(seed).fresh("mutate", structure.value)
    query = build_structure(structure, rng, ParameterSpace(), None)
    assignment = next(
        RuleBasedEnumeration(ParameterSpace()).assignments(
            query.plan, CLUSTER, rng
        )
    )
    query.plan.set_parallelism(assignment)
    return query


class TestMutationsAreCaught:
    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=15, deadline=None)
    def test_dropping_an_edge_is_caught(self, seed):
        query = _fresh_query(seed)
        plan = query.plan
        dropped = plan.edges[len(plan.edges) // 2]
        plan._edges = [e for e in plan.edges if e is not dropped]
        report = analyze_plan(plan, cluster=CLUSTER)
        assert report.has_errors
        # either the consumer lost its input or the producer its sink
        # (a dropped join input also malforms the port set)
        assert report.codes() & {"PLAN005", "PLAN006", "PLAN007"}

    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=15, deadline=None)
    def test_breaking_a_join_key_type_is_caught(self, seed):
        query = _fresh_query(seed)
        plan = query.plan
        joins = [
            op for op in plan.operators.values()
            if op.kind is OperatorKind.WINDOW_JOIN
        ]
        assert joins, "two_way_join structure must contain a join"
        join = joins[0]
        left_edge = next(
            e for e in plan.in_edges(join.op_id) if e.port == 0
        )
        src = plan.operators[left_edge.src]
        key_field = join.metadata["key_fields"][0]
        fields = list(src.output_schema.fields)
        fields[key_field] = Field(
            fields[key_field].name, DataType.STRING
        )
        src.output_schema = Schema(fields)
        report = analyze_plan(plan, cluster=CLUSTER)
        assert "SCH103" in report.codes()

    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=15, deadline=None)
    def test_oversubscribing_slots_is_caught(self, seed):
        query = _fresh_query(seed)
        plan = query.plan
        victim = next(
            op for op in plan.operators.values()
            if op.kind is not OperatorKind.SOURCE
            and op.kind is not OperatorKind.SINK
        )
        victim.parallelism = CLUSTER.total_slots + 1
        report = analyze_plan(plan, cluster=CLUSTER)
        findings = report.by_code("RES401")
        assert findings and findings[0].severity is Severity.ERROR

    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=15, deadline=None)
    def test_rekeying_an_exchange_is_caught(self, seed):
        query = _fresh_query(seed)
        plan = query.plan
        join = next(
            op for op in plan.operators.values()
            if op.kind is OperatorKind.WINDOW_JOIN
        )
        if join.parallelism == 1:
            join.parallelism = 2
        left_edge = next(
            e for e in plan.in_edges(join.op_id) if e.port == 0
        )
        key_field = join.metadata["key_fields"][0]
        wrong = key_field + 1
        plan._edges = [e for e in plan.edges if e is not left_edge]
        plan.connect(
            left_edge.src,
            left_edge.dst,
            HashPartitioner(key_field=wrong),
            port=0,
        )
        report = analyze_plan(plan, cluster=CLUSTER)
        assert "KEY202" in report.codes()
