"""Unit tests for window assigners and aggregate functions."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sps.windows import (
    AggregateFunction,
    SlidingCountWindows,
    SlidingTimeWindows,
    TumblingCountWindows,
    TumblingTimeWindows,
    Window,
)


class TestWindow:
    def test_contains_half_open(self):
        window = Window(1.0, 2.0)
        assert window.contains(1.0)
        assert window.contains(1.999)
        assert not window.contains(2.0)
        assert not window.contains(0.999)

    def test_duration(self):
        assert Window(1.0, 3.5).duration == pytest.approx(2.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Window(2.0, 2.0)


class TestTumblingTime:
    def test_assign_single_window(self):
        assigner = TumblingTimeWindows(0.5)
        windows = assigner.assign(1.2)
        assert len(windows) == 1
        assert windows[0] == Window(1.0, 1.5)

    def test_boundary_goes_to_next(self):
        assigner = TumblingTimeWindows(0.5)
        assert assigner.assign(1.5)[0] == Window(1.5, 2.0)

    def test_features(self):
        assigner = TumblingTimeWindows(0.25)
        assert assigner.feature_length == 0.25
        assert assigner.feature_slide_ratio == 1.0
        assert assigner.is_time_based

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            TumblingTimeWindows(0.0)


class TestSlidingTime:
    def test_overlap_count(self):
        assigner = SlidingTimeWindows(1.0, 0.25)
        windows = assigner.assign(3.6)
        assert len(windows) == 4  # duration / slide
        for window in windows:
            assert window.contains(3.6)

    def test_windows_sorted_and_aligned(self):
        assigner = SlidingTimeWindows(1.0, 0.5)
        windows = assigner.assign(2.1)
        starts = [w.start for w in windows]
        assert starts == sorted(starts)
        for start in starts:
            assert (start / 0.5) == pytest.approx(round(start / 0.5))

    def test_slide_cannot_exceed_duration(self):
        with pytest.raises(ConfigurationError):
            SlidingTimeWindows(0.5, 1.0)

    def test_slide_equal_duration_is_tumbling(self):
        assigner = SlidingTimeWindows(0.5, 0.5)
        assert len(assigner.assign(1.3)) == 1
        assert assigner.feature_slide_ratio == 1.0


class TestCountWindows:
    def test_tumbling_features(self):
        assigner = TumblingCountWindows(100)
        assert not assigner.is_time_based
        assert assigner.feature_length == 100.0
        assert assigner.feature_slide_ratio == 1.0

    def test_sliding_features(self):
        assigner = SlidingCountWindows(100, 30)
        assert assigner.feature_slide_ratio == pytest.approx(0.3)

    def test_invalid_lengths(self):
        with pytest.raises(ConfigurationError):
            TumblingCountWindows(0)
        with pytest.raises(ConfigurationError):
            SlidingCountWindows(10, 20)

    def test_describe(self):
        assert "100" in TumblingCountWindows(100).describe()
        assert "sliding" in SlidingCountWindows(10, 5).describe()


class TestAggregateFunctions:
    values = [3.0, 1.0, 4.0, 1.0, 5.0]

    def test_min_max_sum(self):
        assert AggregateFunction.MIN.apply(self.values) == 1.0
        assert AggregateFunction.MAX.apply(self.values) == 5.0
        assert AggregateFunction.SUM.apply(self.values) == 14.0

    def test_avg_equals_mean(self):
        avg = AggregateFunction.AVG.apply(self.values)
        mean = AggregateFunction.MEAN.apply(self.values)
        assert avg == mean == pytest.approx(2.8)

    def test_count(self):
        assert AggregateFunction.COUNT.apply(self.values) == 5.0
        assert AggregateFunction.COUNT.apply([]) == 0.0

    def test_empty_rejected_for_non_count(self):
        with pytest.raises(ConfigurationError):
            AggregateFunction.SUM.apply([])
