"""Property-based tests on the discrete-event engine itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.sink import SinkLogic
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def run_engine(plan, tuples, seed, chaining=False, nodes=2):
    engine = StreamEngine(
        plan,
        homogeneous_cluster(num_nodes=nodes),
        config=SimulationConfig(
            max_tuples_per_source=tuples,
            max_sim_time=6.0,
            warmup_fraction=0.0,
            keep_sink_values=True,
        ),
        rng_factory=RngFactory(seed),
        chaining=chaining,
    )
    metrics = engine.run()
    sink_values = [
        values
        for rt in engine._runtimes
        if isinstance(rt.logic, SinkLogic)
        for values in rt.logic.results
    ]
    return metrics, sink_values


class TestConservation:
    @given(
        rate=st.floats(min_value=100.0, max_value=5000.0),
        parallelism=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_passthrough_conserves_tuples(self, rate, parallelism, seed):
        """Every emitted tuple reaches the sink exactly once, for any

        rate/parallelism/seed combination."""
        plan = LogicalPlan("conserve")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), SCHEMA, event_rate=rate,
                parallelism=parallelism,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "sink")
        metrics, _ = run_engine(plan, tuples=300, seed=seed)
        assert metrics.results == metrics.source_events

    @given(
        threshold=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_filter_partition(self, threshold, seed):
        """sink(pass) + dropped == emitted for any filter threshold."""
        plan = LogicalPlan("filter-partition")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), SCHEMA, event_rate=1500.0
            )
        )
        plan.add_operator(
            builders.filter_op(
                "flt",
                Predicate(
                    1, FilterFunction.GT, threshold,
                    selectivity_hint=max(1.0 - threshold, 0.01),
                ),
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "flt")
        plan.connect("flt", "sink")
        metrics, values = run_engine(plan, tuples=400, seed=seed)
        assert metrics.results <= metrics.source_events
        assert all(v[1] > threshold for v in values)


class TestChainingEquivalence:
    @given(
        threshold=st.floats(min_value=0.2, max_value=0.8),
        factor=st.floats(min_value=0.5, max_value=3.0),
        seed=st.integers(min_value=0, max_value=500),
        nodes=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_chained_equals_unchained(
        self, threshold, factor, seed, nodes
    ):
        """Chaining must never change what the query computes."""

        def build():
            plan = LogicalPlan("equiv")
            plan.add_operator(
                builders.source(
                    "src", kv_generator(), SCHEMA, event_rate=1000.0,
                    parallelism=2,
                )
            )
            plan.add_operator(
                builders.filter_op(
                    "flt",
                    Predicate(
                        1, FilterFunction.GT, threshold,
                        selectivity_hint=max(1.0 - threshold, 0.01),
                    ),
                    parallelism=2,
                )
            )
            plan.add_operator(
                builders.map_op(
                    "map",
                    lambda values: (values[0], values[1] * factor),
                    parallelism=2,
                )
            )
            plan.add_operator(builders.sink("sink"))
            plan.connect("src", "flt")
            plan.connect("flt", "map")
            plan.connect("map", "sink")
            return plan

        _, plain = run_engine(
            build(), tuples=300, seed=seed, chaining=False, nodes=nodes
        )
        _, fused = run_engine(
            build(), tuples=300, seed=seed, chaining=True, nodes=nodes
        )
        assert sorted(plain) == sorted(fused)


class TestWaitTimeDiagnostics:
    def test_saturated_operator_has_dominant_wait(self):
        from repro.sps.operators.udo import FunctionUDO

        plan = LogicalPlan("wait")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), SCHEMA, event_rate=20_000.0
            )
        )
        plan.add_operator(
            builders.udo(
                "slow",
                lambda: FunctionUDO(lambda state, t, now: [t]),
                cost_scale=10.0,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "slow")
        plan.connect("slow", "sink")
        metrics, _ = run_engine(plan, tuples=2000, seed=3)
        waits = metrics.operator_avg_wait
        assert waits["slow"] > 10 * waits["src"]
        assert waits["slow"] > 1e-3  # queueing dominates

    def test_unloaded_operator_waits_near_zero(self):
        plan = LogicalPlan("idle")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), SCHEMA, event_rate=200.0
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "sink")
        metrics, _ = run_engine(plan, tuples=200, seed=3)
        assert metrics.operator_avg_wait["sink"] < 1e-4
