"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = [
    "--nodes", "4", "--repeats", "1", "--tuples", "1200",
    "--sim-time", "3.0", "--dilation", "25.0",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_run_app_defaults(self):
        args = build_parser().parse_args(["run-app", "--app", "WC"])
        assert args.parallelism == 8
        assert args.rate == 100_000.0
        assert args.cluster == "m510"

    def test_structure_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-synthetic", "--structure", "octopus_join"]
            )


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "WC" in out and "Smart Grid" in out
        assert out.count("\n") > 14

    def test_run_app(self, capsys):
        code = main(
            ["run-app", "--app", "TPCH", "--parallelism", "2", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "median latency" in out
        assert "TPCH" in out

    def test_run_synthetic(self, capsys):
        code = main(
            [
                "run-synthetic", "--structure", "linear",
                "--parallelism", "2", *FAST,
            ]
        )
        assert code == 0
        assert "linear" in capsys.readouterr().out

    def test_run_app_persists(self, capsys, tmp_path):
        storage = str(tmp_path / "db")
        main(
            ["run-app", "--app", "WC", "--parallelism", "1",
             "--storage", storage, *FAST]
        )
        from repro.storage import DocumentStore

        assert DocumentStore(storage)["runs"].count() == 1

    def test_tables(self, capsys):
        assert main(["tables", "1"]) == 0
        assert "PDSP-Bench" in capsys.readouterr().out
        assert main(["tables", "4"]) == 0
        assert "c6320" in capsys.readouterr().out
        assert main(["tables", "2"]) == 0
        assert "intensity" in capsys.readouterr().out

    def test_run_suite_subset(self, capsys):
        code = main(
            ["run-suite", "--apps", "WC", "LP", "--parallelism", "2",
             *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WC" in out and "LP" in out
        assert "SG" not in out

    def test_hetero_flag(self, capsys):
        code = main(
            ["run-app", "--app", "LP", "--parallelism", "2",
             "--hetero", *FAST]
        )
        assert code == 0
        assert "heterogeneous" in capsys.readouterr().out


class TestLintPlan:
    def test_all_apps_clean(self, capsys):
        assert main(["lint-plan", "--all-apps"]) == 0
        out = capsys.readouterr().out
        assert "WC: clean" in out
        assert "linted 14 plan(s): ok" in out

    def test_app_subset_and_strict(self, capsys):
        assert main(["lint-plan", "--app", "WC", "SG", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "SG: clean" in out and "(strict)" in out

    def test_json_format(self, capsys):
        import json

        assert main(["lint-plan", "--app", "WC", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["plan"] == "WC"
        assert data[0]["clean"] is True

    def test_synthetic_structure(self, capsys):
        code = main(
            ["lint-plan", "--structure", "linear", "--nodes", "10"]
        )
        assert code == 0
        assert "linear" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint-plan", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("PLAN003", "SCH103", "KEY201", "WIN302", "RES401",
                     "COST502"):
            assert code in out

    def test_broken_plan_exits_non_zero(self, capsys, monkeypatch):
        import repro.cli as cli_module
        from repro.sps.logical import LogicalPlan

        monkeypatch.setattr(
            cli_module, "_lint_targets",
            lambda args: [("broken", LogicalPlan("broken"))],
        )
        assert main(["lint-plan"]) == 1
        out = capsys.readouterr().out
        assert "PLAN001" in out and "FAILED" in out

    def test_strict_promotes_warnings(self, capsys, monkeypatch):
        import repro.cli as cli_module
        from tests.test_analysis import good_plan

        plan = good_plan()
        plan.connect(
            "src", "keep",
        )  # duplicate edge -> PLAN008 warning
        monkeypatch.setattr(
            cli_module, "_lint_targets",
            lambda args: [("dup", plan)],
        )
        assert main(["lint-plan"]) == 0
        capsys.readouterr()
        assert main(["lint-plan", "--strict"]) == 1


class TestSanitize:
    def test_tree_scan_clean(self, capsys):
        from pathlib import Path

        import repro

        tree = str(Path(repro.__file__).parent / "apps")
        assert main(["sanitize", tree, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_default_target_is_package_tree(self, capsys):
        assert main(["sanitize", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "sanitized" in out and "ok" in out

    def test_all_apps_clean(self, capsys):
        assert main(["sanitize", "--all-apps", "--strict"]) == 0
        assert "14 target(s)" in capsys.readouterr().out

    def test_unknown_app_alias_exits_two(self, capsys):
        assert main(["sanitize", "--app", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert "unknown app" in err

    def test_app_full_name_resolves(self, capsys):
        assert main(["sanitize", "--app", "word-count"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_list_rules_shows_det_family(self, capsys):
        assert main(["sanitize", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET601", "DET603", "DET606", "DET607", "DET609"):
            assert code in out
        assert "PLAN003" not in out

    def test_lint_plan_list_rules_includes_det(self, capsys):
        assert main(["lint-plan", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET601" in out and "DET609" in out

    def test_json_schema_stable(self, capsys, tmp_path):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["sanitize", str(dirty), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert sorted(data[0]) == [
            "clean", "diagnostics", "errors", "infos", "plan", "warnings",
        ]
        (diag,) = data[0]["diagnostics"]
        assert sorted(diag) == [
            "code", "edge", "hint", "message", "op_id", "severity",
        ]
        assert diag["code"] == "DET601"
        assert diag["op_id"].endswith("dirty.py:2")

    def test_strict_promotes_warnings_to_failure(self, capsys, tmp_path):
        warn_only = tmp_path / "warn.py"
        warn_only.write_text("S = {1, 2}\nwords = list(S)\n")
        assert main(["sanitize", str(warn_only)]) == 0
        capsys.readouterr()
        assert main(["sanitize", str(warn_only), "--strict"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_error_findings_exit_non_zero(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["sanitize", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET601" in out and "FAILED" in out

    def test_runtime_flag_runs_race_detector(self, capsys):
        code = main(
            ["sanitize", "--app", "WC", "--runtime",
             "--parallelism", "2", "--rate", "2000", "--strict"]
        )
        assert code == 0
        assert "2 target(s)" in capsys.readouterr().out
