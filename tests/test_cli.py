"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = [
    "--nodes", "4", "--repeats", "1", "--tuples", "1200",
    "--sim-time", "3.0", "--dilation", "25.0",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_run_app_defaults(self):
        args = build_parser().parse_args(["run-app", "--app", "WC"])
        assert args.parallelism == 8
        assert args.rate == 100_000.0
        assert args.cluster == "m510"

    def test_structure_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-synthetic", "--structure", "octopus_join"]
            )


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "WC" in out and "Smart Grid" in out
        assert out.count("\n") > 14

    def test_run_app(self, capsys):
        code = main(
            ["run-app", "--app", "TPCH", "--parallelism", "2", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "median latency" in out
        assert "TPCH" in out

    def test_run_synthetic(self, capsys):
        code = main(
            [
                "run-synthetic", "--structure", "linear",
                "--parallelism", "2", *FAST,
            ]
        )
        assert code == 0
        assert "linear" in capsys.readouterr().out

    def test_run_app_persists(self, capsys, tmp_path):
        storage = str(tmp_path / "db")
        main(
            ["run-app", "--app", "WC", "--parallelism", "1",
             "--storage", storage, *FAST]
        )
        from repro.storage import DocumentStore

        assert DocumentStore(storage)["runs"].count() == 1

    def test_tables(self, capsys):
        assert main(["tables", "1"]) == 0
        assert "PDSP-Bench" in capsys.readouterr().out
        assert main(["tables", "4"]) == 0
        assert "c6320" in capsys.readouterr().out
        assert main(["tables", "2"]) == 0
        assert "intensity" in capsys.readouterr().out

    def test_run_suite_subset(self, capsys):
        code = main(
            ["run-suite", "--apps", "WC", "LP", "--parallelism", "2",
             *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WC" in out and "LP" in out
        assert "SG" not in out

    def test_hetero_flag(self, capsys):
        code = main(
            ["run-app", "--app", "LP", "--parallelism", "2",
             "--hetero", *FAST]
        )
        assert code == 0
        assert "heterogeneous" in capsys.readouterr().out
