"""Tests for the runtime race detector and the sanitizing runner path."""

import numpy as np
import pytest

from repro.analysis.racecheck import RaceDetector, compare_ledgers
from repro.cluster import homogeneous_cluster
from repro.common.errors import DeterminismError
from repro.common.rng import RngFactory, state_fingerprint
from repro.core.parallel import ParallelRunner, fork_unsafe_captures
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.obs import EngineObserver
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.partitioning import RebalancePartitioner
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])

# The seeded nondeterminism mutation: every subtask of an operator
# draws from this one module-level generator.
_SHARED_RNG = np.random.default_rng(7)  # dsan: ok DET606


class SharedRngLogic(OperatorLogic):
    """Mutant logic that shares one RNG across all its subtasks."""

    def setup(self, ctx):
        super().setup(ctx)
        self._rng = _SHARED_RNG

    def process(self, tup, now, port=0):
        _ = self._rng.random()
        return [tup]


class CleanLogic(OperatorLogic):
    def process(self, tup, now, port=0):
        _ = self.ctx.rng.random()
        return [tup]


def simple_plan(logic_factory, parallelism=2, key_field=None,
                partitioner=None, num_keys=5):
    plan = LogicalPlan("racecheck")
    plan.add_operator(
        builders.source(
            "src", kv_generator(num_keys), SCHEMA, event_rate=400.0
        )
    )
    plan.add_operator(
        builders.udo(
            "udo", logic_factory, parallelism=parallelism,
            key_field=key_field, output_schema=SCHEMA,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "udo", partitioner=partitioner)
    plan.connect("udo", "sink")
    return plan


def run_engine(plan, sanitize=True, observer=None, preflight=True,
               seed=3, tuples=200):
    engine = StreamEngine(
        plan,
        homogeneous_cluster(num_nodes=2),
        config=SimulationConfig(
            max_tuples_per_source=tuples, max_sim_time=3.0
        ),
        rng_factory=RngFactory(seed),
        observer=observer,
        preflight=preflight,
        sanitize=sanitize,
    )
    metrics = engine.run()
    return engine, metrics


class TestStateFingerprint:
    def test_equal_iff_same_stream_position(self):
        a = np.random.default_rng(1)
        b = np.random.default_rng(1)
        assert state_fingerprint(a) == state_fingerprint(b)
        a.random()
        assert state_fingerprint(a) != state_fingerprint(b)
        b.random()
        assert state_fingerprint(a) == state_fingerprint(b)

    def test_fingerprint_is_a_pure_read(self):
        gen = np.random.default_rng(5)
        before = gen.bit_generator.state
        state_fingerprint(gen)
        assert gen.bit_generator.state == before


class TestCleanRuns:
    def test_no_findings_on_clean_plan(self):
        engine, _ = run_engine(simple_plan(CleanLogic))
        assert engine.race_detector.findings == []

    def test_ledger_covers_every_subtask_and_arrivals(self):
        engine, _ = run_engine(simple_plan(CleanLogic))
        ledger = engine.race_detector.rng_ledger
        assert "engine/arrivals" in ledger
        assert "udo[0]" in ledger and "udo[1]" in ledger

    def test_sanitize_off_is_bit_identical(self):
        _, with_san = run_engine(simple_plan(CleanLogic), sanitize=True)
        _, without = run_engine(simple_plan(CleanLogic), sanitize=False)
        assert with_san.latency.mean == without.latency.mean
        assert with_san.throughput == without.throughput
        assert with_san.results == without.results

    def test_detector_ledger_repeatable(self):
        e1, _ = run_engine(simple_plan(CleanLogic))
        e2, _ = run_engine(simple_plan(CleanLogic))
        assert (e1.race_detector.rng_ledger
                == e2.race_detector.rng_ledger)


class TestObserverDelegation:
    def test_inner_observer_still_counts(self):
        observer = EngineObserver(sample_interval=0.5, serve_spans=False)
        engine, _ = run_engine(
            simple_plan(CleanLogic), observer=observer
        )
        summary = observer.summary()
        assert summary["totals"]["tuples_in"] > 0
        assert engine.race_detector.tuples_in is observer.tuples_in

    def test_observed_results_identical_with_detector(self):
        obs_a = EngineObserver(sample_interval=0.5, serve_spans=False)
        _, with_det = run_engine(
            simple_plan(CleanLogic), sanitize=True, observer=obs_a
        )
        obs_b = EngineObserver(sample_interval=0.5, serve_spans=False)
        _, without = run_engine(
            simple_plan(CleanLogic), sanitize=False, observer=obs_b
        )
        assert with_det.latency.mean == without.latency.mean
        assert obs_a.summary()["totals"] == obs_b.summary()["totals"]


class TestSharedRngDetection:
    def test_shared_generator_object_flagged(self):
        engine, _ = run_engine(simple_plan(SharedRngLogic))
        codes = {d.code for d in engine.race_detector.findings}
        assert "DET608" in codes

    def test_identically_seeded_clones_flagged(self):
        class CloneLogic(OperatorLogic):
            def setup(self, ctx):
                super().setup(ctx)
                self._rng = np.random.default_rng(99)

            def process(self, tup, now, port=0):
                _ = self._rng.random()
                return [tup]

        engine, _ = run_engine(simple_plan(CloneLogic))
        codes = {d.code for d in engine.race_detector.findings}
        assert "DET608" in codes

    def test_parallelism_one_not_flagged(self):
        engine, _ = run_engine(
            simple_plan(SharedRngLogic, parallelism=1)
        )
        # One subtask: the generator is reachable from one place only.
        codes = {d.code for d in engine.race_detector.findings}
        assert "DET608" not in codes


class TestKeyAliasing:
    def test_rebalanced_keyed_state_flagged(self):
        plan = simple_plan(
            CleanLogic, key_field=0,
            partitioner=RebalancePartitioner(), num_keys=3,
        )
        engine, _ = run_engine(plan, preflight=False)
        codes = {d.code for d in engine.race_detector.findings}
        assert "DET607" in codes

    def test_hash_partitioned_keyed_state_clean(self):
        plan = simple_plan(CleanLogic, key_field=0)
        engine, _ = run_engine(plan)
        codes = {d.code for d in engine.race_detector.findings}
        assert "DET607" not in codes

    def test_finding_reported_once_per_key(self):
        plan = simple_plan(
            CleanLogic, key_field=0,
            partitioner=RebalancePartitioner(), num_keys=2,
        )
        engine, _ = run_engine(plan, preflight=False)
        det607 = [
            d for d in engine.race_detector.findings
            if d.code == "DET607"
        ]
        assert 1 <= len(det607) <= 2


class TestCompareLedgers:
    def test_equal_ledgers_no_findings(self):
        ledger = {"udo[0]": "aa", "engine/arrivals": "bb"}
        assert compare_ledgers(ledger, dict(ledger)) == []

    def test_diverged_stream_flagged(self):
        a = {"udo[0]": "aa"}
        b = {"udo[0]": "cc"}
        (diag,) = compare_ledgers(a, b)
        assert diag.code == "DET609"
        assert "udo[0]" in diag.message

    def test_missing_stream_flagged(self):
        findings = compare_ledgers({"udo[0]": "aa"}, {})
        assert [d.code for d in findings] == ["DET609"]


class TestForkCaptureCheck:
    def test_rng_capture_detected(self):
        gen = np.random.default_rng(3)

        def work(i):
            return gen.random() + i

        hazards = fork_unsafe_captures(work)
        assert hazards and "Generator" in hazards[0]

    def test_clean_closure_passes(self):
        base = 10

        def work(i):
            return base + i

        assert fork_unsafe_captures(work) == []

    def test_runner_refuses_unsafe_closure(self):
        gen = np.random.default_rng(3)

        def work(i):
            return gen.random() + i

        runner = ParallelRunner(workers=2, check_captures=True)
        with pytest.raises(DeterminismError) as exc_info:
            runner.map(work, [1, 2, 3, 4])
        assert exc_info.value.code == "DET606"

    def test_serial_path_never_checks(self):
        gen = np.random.default_rng(3)

        def work(i):
            return gen.random() + i

        runner = ParallelRunner(workers=1, check_captures=True)
        assert len(runner.map(work, [1, 2])) == 2


class TestRunnerIntegration:
    CFG = dict(repeats=2, max_tuples_per_source=200, max_sim_time=2.0)

    def runner(self, **overrides):
        cfg = dict(self.CFG)
        cfg.update(overrides)
        return BenchmarkRunner(
            homogeneous_cluster(num_nodes=2), RunnerConfig(**cfg)
        )

    def test_sanitized_run_attaches_race_extras(self):
        runs = self.runner(sanitize=True).run_plan(
            simple_plan(CleanLogic)
        )
        for metrics in runs:
            race = metrics.extras["race"]
            assert race["findings"] == []
            assert race["rng_ledger"]

    def test_mutation_raises_determinism_error(self):
        with pytest.raises(DeterminismError) as exc_info:
            self.runner(sanitize=True).run_plan(
                simple_plan(SharedRngLogic)
            )
        assert exc_info.value.code == "DET608"

    def test_unsanitized_results_unchanged(self):
        plan = simple_plan(CleanLogic)
        sanitized = self.runner(sanitize=True).run_plan(plan)
        plain = self.runner(sanitize=False).run_plan(plan)
        for a, b in zip(sanitized, plain):
            assert a.latency.mean == b.latency.mean
            assert a.throughput == b.throughput

    def test_parallel_ledger_matches_serial(self):
        plan = simple_plan(CleanLogic)
        serial = self.runner(sanitize=True, workers=1).run_plan(plan)
        parallel = self.runner(
            sanitize=True, workers=2, repeats=3
        ).run_plan(plan)
        assert (serial[0].extras["race"]["rng_ledger"]
                == parallel[0].extras["race"]["rng_ledger"])

    def test_static_layer_rejects_dirty_udo_source(self, tmp_path):
        # A plan whose operator module contains a DET601 error is
        # rejected before anything runs.
        module = tmp_path / "dirty_logic.py"
        module.write_text(
            "import random\n"
            "from repro.sps.operators.base import OperatorLogic\n"
            "class DirtyLogic(OperatorLogic):\n"
            "    def process(self, tup, now, port=0):\n"
            "        return [tup] if random.random() > 0 else []\n"
        )
        import importlib.util
        import sys

        spec = importlib.util.spec_from_file_location(
            "dirty_logic", module
        )
        mod = importlib.util.module_from_spec(spec)
        sys.modules["dirty_logic"] = mod
        try:
            spec.loader.exec_module(mod)
            plan = simple_plan(mod.DirtyLogic)
            with pytest.raises(DeterminismError) as exc_info:
                self.runner(sanitize=True).run_plan(plan)
        finally:
            del sys.modules["dirty_logic"]
        assert exc_info.value.code == "DET601"


class TestStandaloneDetector:
    def test_detector_without_inner_allocates_arrays(self):
        detector = RaceDetector()
        engine, _ = run_engine(
            simple_plan(CleanLogic), sanitize=False,
            observer=None,
        )
        # Drive the protocol by hand against a fresh engine.
        detector.on_run_start(engine)
        assert len(detector.tuples_in) == len(engine._runtimes)
        assert detector.next_sample == float("inf")
        detector.on_run_end(1.0)
        assert detector.rng_ledger

    def test_report_wraps_findings(self):
        engine, _ = run_engine(simple_plan(SharedRngLogic))
        report = engine.race_detector.report("mutant")
        assert report.plan_name == "mutant"
        assert report.has_errors
