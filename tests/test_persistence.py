"""Tests for trained-model persistence through the document store."""

import numpy as np
import pytest

from repro.common.errors import TrainingError
from repro.ml.models import (
    GNNCostModel,
    LinearRegressionModel,
    MLPCostModel,
    RandomForestModel,
)
from repro.ml.persistence import (
    load_model,
    model_state,
    restore_model,
    save_model,
)
from repro.storage import DocumentStore
from tests.test_ml import _labelled_dataset


@pytest.fixture(scope="module")
def splits():
    dataset = _labelled_dataset(50)
    rng = np.random.default_rng(0)
    return dataset.split(rng)


@pytest.mark.parametrize(
    "model_cls",
    [
        LinearRegressionModel,
        MLPCostModel,
        RandomForestModel,
        GNNCostModel,
    ],
)
class TestRoundTrip:
    def test_predictions_identical_after_restore(self, model_cls, splits):
        train, val, test = splits
        model = model_cls()
        model.fit(train, val, seed=0)
        original = model.predict(test)
        restored = restore_model(model_state(model))
        assert np.allclose(restored.predict(test), original)

    def test_state_is_json_serialisable(self, model_cls, splits):
        import json

        train, val, _ = splits
        model = model_cls()
        model.fit(train, val, seed=0)
        json.dumps(model_state(model))  # must not raise

    def test_unfitted_model_rejected(self, model_cls, splits):
        with pytest.raises(TrainingError):
            model_state(model_cls())


class TestStoreIntegration:
    def test_save_and_load_latest(self, splits):
        train, val, test = splits
        store = DocumentStore()
        first = LinearRegressionModel(ridge_grid=(10.0,))
        first.fit(train, val, seed=0)
        save_model(first, store["models"], tag="v1")
        second = LinearRegressionModel(ridge_grid=(0.001,))
        second.fit(train, val, seed=1)
        save_model(second, store["models"], tag="v2")
        # Latest wins by default; tags select specific versions.
        latest = load_model(store["models"], "LR")
        assert np.allclose(latest.predict(test), second.predict(test))
        tagged = load_model(store["models"], "LR", tag="v1")
        assert np.allclose(tagged.predict(test), first.predict(test))

    def test_missing_model_raises(self):
        store = DocumentStore()
        with pytest.raises(TrainingError, match="no persisted"):
            load_model(store["models"], "GNN")

    def test_unknown_state_rejected(self):
        with pytest.raises(TrainingError, match="unknown"):
            restore_model({"model": "SVM"})

    def test_disk_roundtrip(self, splits, tmp_path):
        train, val, test = splits
        store = DocumentStore(str(tmp_path / "db"))
        model = RandomForestModel(max_trees=5)
        model.fit(train, val, seed=0)
        save_model(model, store["models"])
        reopened = DocumentStore(str(tmp_path / "db"))
        restored = load_model(reopened["models"], "RF")
        assert np.allclose(restored.predict(test), model.predict(test))
