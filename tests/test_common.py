"""Unit tests for repro.common: rng, units, errors."""

import numpy as np
import pytest

from repro.common.errors import (
    ConfigurationError,
    PlanError,
    ReproError,
    SimulationError,
    StorageError,
    TrainingError,
)
from repro.common.rng import RngFactory, derive_seed
from repro.common.units import (
    GBPS,
    bytes_per_second,
    format_duration,
    format_rate,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_nonnegative_63bit(self):
        for seed in (0, 1, 2**40, 123456789):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63

    def test_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must produce different seeds.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")


class TestRngFactory:
    def test_get_caches(self):
        rngs = RngFactory(5)
        assert rngs.get("x") is rngs.get("x")

    def test_streams_independent(self):
        rngs = RngFactory(5)
        a = rngs.get("a").random(100)
        b = rngs.get("b").random(100)
        assert not np.allclose(a, b)

    def test_fresh_restarts(self):
        rngs = RngFactory(5)
        first = rngs.fresh("s").random(10)
        second = rngs.fresh("s").random(10)
        assert np.allclose(first, second)

    def test_same_seed_same_streams(self):
        a = RngFactory(9).get("x").random(5)
        b = RngFactory(9).get("x").random(5)
        assert np.allclose(a, b)

    def test_child_factory_differs(self):
        parent = RngFactory(3)
        child = parent.child("sub")
        assert child.seed != parent.seed
        assert not np.allclose(
            parent.fresh("x").random(5), child.fresh("x").random(5)
        )


class TestUnits:
    def test_gbps_constant(self):
        assert GBPS == 1e9 / 8

    def test_bytes_per_second(self):
        assert bytes_per_second(10.0) == pytest.approx(1.25e9)

    def test_bytes_per_second_rejects_negative(self):
        with pytest.raises(ValueError):
            bytes_per_second(-1.0)

    def test_format_duration_units(self):
        assert format_duration(5e-6).endswith("us")
        assert format_duration(5e-3).endswith("ms")
        assert format_duration(5.0).endswith("s")
        assert format_duration(600.0).endswith("min")

    def test_format_duration_negative(self):
        assert format_duration(-0.005).startswith("-")

    def test_format_rate(self):
        assert format_rate(10) == "10 ev/s"
        assert format_rate(5000) == "5k ev/s"
        assert format_rate(2_000_000) == "2mn ev/s"

    def test_format_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            format_rate(-5)


class TestErrors:
    def test_hierarchy(self):
        for cls in (
            ConfigurationError,
            PlanError,
            SimulationError,
            StorageError,
            TrainingError,
        ):
            assert issubclass(cls, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise PlanError("boom")
