"""Tests for the complementary regression metrics (MAPE / RMSE / R^2)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.ml.qerror import regression_metrics


class TestRegressionMetrics:
    def test_perfect_prediction(self):
        y = np.array([0.1, 1.0, 10.0])
        metrics = regression_metrics(y, y)
        assert metrics["mape_pct"] == pytest.approx(0.0)
        assert metrics["rmse_log"] == pytest.approx(0.0)
        assert metrics["r2_log"] == pytest.approx(1.0)

    def test_mape_scale(self):
        true = np.array([1.0, 2.0])
        pred = np.array([1.1, 2.2])  # uniformly 10% off
        metrics = regression_metrics(true, pred)
        assert metrics["mape_pct"] == pytest.approx(10.0)

    def test_rmse_log_constant_factor(self):
        true = np.array([1.0, 10.0, 100.0])
        pred = true * np.e  # log error exactly 1 everywhere
        metrics = regression_metrics(true, pred)
        assert metrics["rmse_log"] == pytest.approx(1.0)

    def test_r2_worse_than_mean_is_negative(self):
        true = np.array([0.1, 1.0, 10.0])
        pred = np.array([10.0, 1.0, 0.1])  # anti-correlated
        assert regression_metrics(true, pred)["r2_log"] < 0.0

    def test_constant_target_degenerate(self):
        true = np.array([2.0, 2.0, 2.0])
        perfect = regression_metrics(true, true)
        assert perfect["r2_log"] == 1.0
        off = regression_metrics(true, true * 2)
        assert off["r2_log"] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            regression_metrics(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            regression_metrics(np.array([0.0]), np.array([1.0]))

    def test_present_in_manager_reports(self):
        from repro.ml import MLManager
        from repro.ml.models import LinearRegressionModel
        from tests.test_ml import _labelled_dataset

        manager = MLManager(models=[LinearRegressionModel()], seed=0)
        reports = manager.train_and_evaluate(_labelled_dataset(40))
        regression = reports["LR"].regression
        assert {"mape_pct", "rmse_log", "r2_log"} <= set(regression)
        assert reports["LR"].to_dict()["regression"] == regression
