"""Tests for the embedded document store (the MongoDB stand-in)."""

import pytest

from repro.common.errors import StorageError
from repro.storage import DocumentStore


@pytest.fixture
def store():
    return DocumentStore()  # in-memory


@pytest.fixture
def people(store):
    collection = store["people"]
    collection.insert_many(
        [
            {"name": "ada", "age": 36, "city": "london"},
            {"name": "grace", "age": 45, "city": "nyc"},
            {"name": "alan", "age": 41, "city": "london"},
        ]
    )
    return collection


class TestInsertAndFind:
    def test_insert_assigns_ids(self, store):
        collection = store["c"]
        ids = collection.insert_many([{"a": 1}, {"a": 2}])
        assert ids == [1, 2]
        assert collection.insert_one({"a": 3}) == 3

    def test_find_equality(self, people):
        results = people.find({"city": "london"})
        assert {doc["name"] for doc in results} == {"ada", "alan"}

    def test_find_operators(self, people):
        assert people.count({"age": {"$gt": 40}}) == 2
        assert people.count({"age": {"$gte": 45}}) == 1
        assert people.count({"age": {"$lt": 40}}) == 1
        assert people.count({"age": {"$ne": 36}}) == 2
        assert people.count({"name": {"$in": ["ada", "alan"]}}) == 2
        assert people.count({"name": {"$nin": ["ada", "alan"]}}) == 1
        assert people.count({"pet": {"$exists": False}}) == 3

    def test_unknown_operator(self, people):
        with pytest.raises(StorageError, match="unknown query operator"):
            people.find({"age": {"$near": 40}})

    def test_find_one(self, people):
        doc = people.find_one({"name": "grace"})
        assert doc["age"] == 45
        assert people.find_one({"name": "nobody"}) is None

    def test_sort_and_limit(self, people):
        youngest = people.find(sort_by="age", limit=1)
        assert youngest[0]["name"] == "ada"
        oldest = people.find(sort_by="age", descending=True, limit=1)
        assert oldest[0]["name"] == "grace"

    def test_dotted_paths(self, store):
        collection = store["nested"]
        collection.insert_one({"metrics": {"latency": {"p50": 0.25}}})
        assert collection.count({"metrics.latency.p50": {"$gt": 0.2}}) == 1
        assert collection.count({"metrics.latency.p99": {"$gt": 0}}) == 0

    def test_find_returns_copies(self, people):
        doc = people.find_one({"name": "ada"})
        doc["age"] = 999
        assert people.find_one({"name": "ada"})["age"] == 36

    def test_distinct(self, people):
        assert people.distinct("city") == ["london", "nyc"]


class TestMutation:
    def test_delete_many(self, people):
        removed = people.delete_many({"city": "london"})
        assert removed == 2
        assert people.count() == 1

    def test_rejects_non_dict(self, store):
        with pytest.raises(StorageError):
            store["c"].insert_one(["not", "a", "dict"])

    def test_rejects_unserialisable(self, store):
        with pytest.raises(StorageError, match="JSON"):
            store["c"].insert_one({"fn": lambda: 1})


class TestPersistence:
    def test_roundtrip_on_disk(self, tmp_path):
        directory = str(tmp_path / "db")
        store = DocumentStore(directory)
        store["runs"].insert_many([{"x": 1}, {"x": 2}])
        reopened = DocumentStore(directory)
        assert reopened["runs"].count() == 2
        assert reopened["runs"].find_one({"x": 2})["x"] == 2

    def test_ids_continue_after_reload(self, tmp_path):
        directory = str(tmp_path / "db")
        DocumentStore(directory)["c"].insert_one({"x": 1})
        reopened = DocumentStore(directory)
        assert reopened["c"].insert_one({"x": 2}) == 2

    def test_delete_rewrites_file(self, tmp_path):
        directory = str(tmp_path / "db")
        store = DocumentStore(directory)
        store["c"].insert_many([{"x": 1}, {"x": 2}])
        store["c"].delete_many({"x": 1})
        reopened = DocumentStore(directory)
        assert reopened["c"].count() == 1

    def test_corrupt_file_raises(self, tmp_path):
        directory = tmp_path / "db"
        directory.mkdir()
        (directory / "bad.jsonl").write_text("{not json}\n")
        store = DocumentStore(str(directory))
        with pytest.raises(StorageError, match="corrupt"):
            store["bad"]

    def test_list_collections_includes_disk(self, tmp_path):
        directory = str(tmp_path / "db")
        DocumentStore(directory)["alpha"].insert_one({"x": 1})
        reopened = DocumentStore(directory)
        assert "alpha" in reopened.list_collections()

    def test_drop(self, tmp_path):
        directory = str(tmp_path / "db")
        store = DocumentStore(directory)
        store["gone"].insert_one({"x": 1})
        store.drop("gone")
        assert DocumentStore(directory)["gone"].count() == 0

    def test_invalid_collection_name(self, store):
        with pytest.raises(StorageError):
            store.collection("")
        with pytest.raises(StorageError):
            store.collection("a/b")
