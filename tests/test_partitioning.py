"""Unit tests for the data partitioning strategies."""

import pytest

from repro.common.errors import PlanError
from repro.sps.partitioning import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)
from repro.sps.tuples import StreamTuple


def tup(*values, key=None):
    return StreamTuple(values=values, event_time=0.0, key=key)


class TestForward:
    def test_routes_to_same_index(self):
        partitioner = ForwardPartitioner().for_producer(3)
        assert partitioner.select(tup(1), 8) == [3]

    def test_rejects_mismatched_parallelism(self):
        partitioner = ForwardPartitioner().for_producer(5)
        with pytest.raises(PlanError):
            partitioner.select(tup(1), 4)

    def test_clone_preserves_index(self):
        partitioner = ForwardPartitioner(2).clone()
        assert partitioner.select(tup(1), 4) == [2]

    def test_requires_equal_parallelism_flag(self):
        assert ForwardPartitioner.requires_equal_parallelism


class TestRebalance:
    def test_round_robin(self):
        partitioner = RebalancePartitioner()
        choices = [partitioner.select(tup(i), 3)[0] for i in range(7)]
        assert choices == [0, 1, 2, 0, 1, 2, 0]

    def test_clone_resets_counter(self):
        partitioner = RebalancePartitioner()
        partitioner.select(tup(1), 3)
        fresh = partitioner.clone()
        assert fresh.select(tup(1), 3) == [0]

    def test_rejects_zero_consumers(self):
        with pytest.raises(PlanError):
            RebalancePartitioner().select(tup(1), 0)


class TestHash:
    def test_same_key_same_consumer(self):
        partitioner = HashPartitioner(key_field=0)
        first = partitioner.select(tup(42, "x"), 7)
        second = partitioner.select(tup(42, "y"), 7)
        assert first == second

    def test_uses_tuple_key_when_no_field(self):
        partitioner = HashPartitioner()
        a = partitioner.select(tup(1, key="alpha"), 5)
        b = partitioner.select(tup(2, key="alpha"), 5)
        assert a == b

    def test_missing_key_raises(self):
        with pytest.raises(PlanError, match="needs a key"):
            HashPartitioner().select(tup(1), 5)

    def test_string_keys_spread(self):
        partitioner = HashPartitioner(key_field=0)
        targets = {
            partitioner.select(tup(f"key-{i}"), 16)[0] for i in range(200)
        }
        assert len(targets) >= 12  # most consumers hit

    def test_stable_across_instances(self):
        # The hash must not depend on process state (unlike hash(str)).
        one = HashPartitioner(key_field=0).select(tup("abc"), 64)
        two = HashPartitioner(key_field=0).clone().select(tup("abc"), 64)
        assert one == two

    def test_float_and_tuple_keys(self):
        partitioner = HashPartitioner(key_field=0)
        assert partitioner.select(tup(3.25), 8) == partitioner.select(
            tup(3.25), 8
        )
        assert partitioner.select(
            tup((1, "a")), 8
        ) == partitioner.select(tup((1, "a")), 8)

    def test_describe(self):
        assert HashPartitioner(2).describe() == "hash(f2)"
        assert HashPartitioner().describe() == "hash"


class TestBroadcast:
    def test_sends_to_all(self):
        partitioner = BroadcastPartitioner()
        assert partitioner.select(tup(1), 4) == [0, 1, 2, 3]
        assert partitioner.is_broadcast

    def test_rejects_zero_consumers(self):
        with pytest.raises(PlanError):
            BroadcastPartitioner().select(tup(1), 0)
