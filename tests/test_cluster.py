"""Unit tests for the cluster substrate: hardware, nodes, network, builders."""

import pytest

from repro.cluster import (
    HARDWARE_CATALOG,
    Cluster,
    HardwareSpec,
    Network,
    NetworkSpec,
    Node,
    get_hardware,
    heterogeneous_cluster,
    homogeneous_cluster,
    mixed_cluster,
    register_hardware,
)
from repro.common.errors import ConfigurationError


class TestHardwareCatalog:
    """Table 4's published node specs must be encoded exactly."""

    def test_m510_specs(self):
        hw = get_hardware("m510")
        assert (hw.cores, hw.ram_gb, hw.disk_gb) == (8, 64, 256)
        assert hw.clock_ghz == 2.0
        assert hw.nic_gbps == 10.0

    def test_c6525_specs(self):
        hw = get_hardware("c6525_25g")
        assert (hw.cores, hw.ram_gb, hw.disk_gb) == (16, 128, 480)
        assert hw.clock_ghz == 2.2
        assert "AMD" in hw.processor

    def test_c6320_specs(self):
        hw = get_hardware("c6320")
        assert (hw.cores, hw.ram_gb, hw.disk_gb) == (28, 256, 1024)
        assert hw.clock_ghz == 2.0

    def test_speed_factor_ordering(self):
        # AMD EPYC cores fastest, Haswell slowest, m510 the baseline 1.0.
        m510 = get_hardware("m510").speed_factor
        amd = get_hardware("c6525_25g").speed_factor
        haswell = get_hardware("c6320").speed_factor
        assert m510 == 1.0
        assert amd > m510 > haswell

    def test_unknown_hardware(self):
        with pytest.raises(ConfigurationError, match="unknown hardware"):
            get_hardware("p4-gpu")

    def test_register_rejects_duplicate(self):
        spec = HARDWARE_CATALOG["m510"]
        with pytest.raises(ConfigurationError, match="already registered"):
            register_hardware(spec)

    def test_register_new_type(self):
        spec = HardwareSpec(
            name="test-node-xyzzy",
            cores=4,
            ram_gb=16,
            disk_gb=100,
            processor="Test",
            clock_ghz=3.0,
            nic_gbps=1.0,
        )
        try:
            register_hardware(spec)
            assert get_hardware("test-node-xyzzy").cores == 4
            # Default speed factor derives from clock vs the 2 GHz baseline.
            assert spec.speed_factor == pytest.approx(1.5)
        finally:
            HARDWARE_CATALOG.pop("test-node-xyzzy", None)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareSpec("bad", 0, 1, 1, "x", 2.0, 10.0)
        with pytest.raises(ConfigurationError):
            HardwareSpec("bad", 4, 1, 1, "x", -2.0, 10.0)
        with pytest.raises(ConfigurationError):
            HardwareSpec("bad", 4, 1, 1, "x", 2.0, 0.0)


class TestNode:
    def test_one_slot_per_core(self):
        node = Node(node_id=0, hardware=get_hardware("m510"))
        assert node.num_slots == 8
        assert all(slot.node_id == 0 for slot in node.slots)
        assert [s.slot_index for s in node.slots] == list(range(8))

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Node(node_id=-1, hardware=get_hardware("m510"))


class TestNetwork:
    def _nodes(self):
        return [
            Node(node_id=0, hardware=get_hardware("m510")),
            Node(node_id=1, hardware=get_hardware("c6525_25g")),
        ]

    def test_same_node_free(self):
        net = Network(self._nodes())
        assert net.transfer_delay(0, 0, 1_000_000) == 0.0

    def test_cross_node_latency_plus_bandwidth(self):
        spec = NetworkSpec(base_latency_s=1e-4)
        net = Network(self._nodes(), spec)
        delay = net.transfer_delay(0, 1, 1.25e9)  # 1 second at 10 Gbps
        assert delay == pytest.approx(1e-4 + 1.0)

    def test_bandwidth_is_slower_nic(self):
        net = Network(self._nodes())
        # m510 has 10 Gbps, c6525 25 Gbps: the pair is limited to 10.
        assert net.link_bandwidth(0, 1) == pytest.approx(1.25e9)

    def test_monotone_in_size(self):
        net = Network(self._nodes())
        small = net.transfer_delay(0, 1, 100)
        large = net.transfer_delay(0, 1, 10_000)
        assert large > small

    def test_rejects_unknown_node(self):
        net = Network(self._nodes())
        with pytest.raises(ConfigurationError):
            net.transfer_delay(0, 99, 10)

    def test_rejects_negative_size(self):
        net = Network(self._nodes())
        with pytest.raises(ConfigurationError):
            net.transfer_delay(0, 1, -1)


class TestClusterBuilders:
    def test_homogeneous_default_matches_paper(self):
        cluster = homogeneous_cluster()
        assert len(cluster.nodes) == 10
        assert cluster.total_slots == 80
        assert not cluster.is_heterogeneous
        assert cluster.max_cores_per_node == 8

    def test_heterogeneous_alternates(self):
        cluster = heterogeneous_cluster()
        names = [n.hardware.name for n in cluster.nodes]
        assert set(names) == {"c6525_25g", "c6320"}
        assert cluster.is_heterogeneous
        assert cluster.total_slots == 5 * 16 + 5 * 28

    def test_heterogeneous_needs_two_types(self):
        with pytest.raises(ConfigurationError):
            heterogeneous_cluster(("m510",))
        with pytest.raises(ConfigurationError):
            heterogeneous_cluster(("m510", "m510"))

    def test_mixed_cluster_counts(self):
        cluster = mixed_cluster({"m510": 2, "c6320": 3})
        assert len(cluster.nodes) == 5
        counts = {}
        for node in cluster.nodes:
            counts[node.hardware.name] = counts.get(
                node.hardware.name, 0
            ) + 1
        assert counts == {"m510": 2, "c6320": 3}

    def test_mixed_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            mixed_cluster({"m510": 0})

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster([])
        with pytest.raises(ConfigurationError):
            homogeneous_cluster(num_nodes=0)

    def test_all_slots_grouped_by_node(self):
        cluster = homogeneous_cluster(num_nodes=2)
        slots = cluster.all_slots()
        assert len(slots) == 16
        assert [s.node_id for s in slots] == [0] * 8 + [1] * 8

    def test_describe_mentions_mix(self):
        assert "m510" in homogeneous_cluster().describe()

    def test_node_lookup(self):
        cluster = homogeneous_cluster(num_nodes=2)
        assert cluster.node(1).node_id == 1
        with pytest.raises(ConfigurationError):
            cluster.node(5)
