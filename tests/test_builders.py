"""Direct tests for the plan-construction helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sps import builders
from repro.sps.costs import OperatorCost, default_cost
from repro.sps.logical import OperatorKind
from repro.sps.operators.aggregate import WindowAggregateLogic
from repro.sps.operators.event_aggregate import (
    EventTimeWindowAggregateLogic,
)
from repro.sps.operators.filter_op import FilterLogic
from repro.sps.operators.join import WindowJoinLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import (
    AggregateFunction,
    TumblingCountWindows,
    TumblingTimeWindows,
)
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


class TestSourceBuilder:
    def test_metadata(self):
        op = builders.source(
            "s", kv_generator(), SCHEMA, event_rate=1234.0,
            arrival="constant",
        )
        assert op.kind is OperatorKind.SOURCE
        assert op.metadata["event_rate"] == 1234.0
        assert op.metadata["arrival"] == "constant"
        assert op.output_schema is SCHEMA

    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            builders.source("s", kv_generator(), SCHEMA, event_rate=0.0)

    def test_fresh_logic_per_call(self):
        op = builders.source("s", kv_generator(), SCHEMA, 10.0)
        assert op.logic_factory() is not op.logic_factory()


class TestFilterBuilder:
    def test_selectivity_from_hint(self):
        predicate = Predicate(
            0, FilterFunction.GT, 5, selectivity_hint=0.3
        )
        op = builders.filter_op("f", predicate)
        assert op.selectivity == pytest.approx(0.3)
        assert isinstance(op.logic_factory(), FilterLogic)
        assert "f0 > 5" in op.metadata["predicate"]


class TestAggBuilders:
    def test_count_window_default_selectivity(self):
        op = builders.window_agg(
            "a",
            TumblingCountWindows(50),
            AggregateFunction.SUM,
            value_field=1,
        )
        assert op.selectivity == pytest.approx(1.0 / 50)
        assert isinstance(op.logic_factory(), WindowAggregateLogic)

    def test_time_window_keeps_window_feature(self):
        assigner = TumblingTimeWindows(0.25)
        op = builders.window_agg(
            "a", assigner, AggregateFunction.AVG, value_field=1,
            key_field=0,
        )
        assert op.window is assigner
        assert op.metadata["key_field"] == 0

    def test_event_window_agg_builder(self):
        op = builders.event_window_agg(
            "a",
            TumblingTimeWindows(0.25),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            max_out_of_orderness=0.02,
        )
        logic = op.logic_factory()
        assert isinstance(logic, EventTimeWindowAggregateLogic)
        assert logic.max_out_of_orderness == pytest.approx(0.02)
        assert op.metadata["time_semantics"] == "event"
        assert op.kind is OperatorKind.WINDOW_AGG


class TestJoinAndUdoBuilders:
    def test_join_key_fields_metadata(self):
        op = builders.window_join(
            "j",
            TumblingTimeWindows(0.5),
            left_key_field=0,
            right_key_field=2,
        )
        assert op.metadata["key_fields"] == (0, 2)
        assert isinstance(op.logic_factory(), WindowJoinLogic)

    def test_udo_cost_scale(self):
        from repro.sps.operators.udo import FunctionUDO

        base = default_cost(OperatorKind.UDO).base_cpu_s
        op = builders.udo(
            "u",
            lambda: FunctionUDO(lambda s, t, n: [t]),
            cost_scale=3.0,
        )
        assert op.cost.base_cpu_s == pytest.approx(3.0 * base)
        assert op.cost.is_udo

    def test_udo_explicit_cost_wins(self):
        from repro.sps.operators.udo import FunctionUDO

        custom = OperatorCost(
            base_cpu_s=1e-3, coord_kappa=0.1, stateful=True, is_udo=True
        )
        op = builders.udo(
            "u",
            lambda: FunctionUDO(lambda s, t, n: [t]),
            cost_scale=99.0,  # must be ignored
            cost=custom,
        )
        assert op.cost is custom


class TestSinkBuilder:
    def test_keep_values_propagates(self):
        op = builders.sink(keep_values=True)
        logic = op.logic_factory()
        assert isinstance(logic, SinkLogic)
        assert logic.keep_values


class TestCostProfiles:
    def test_defaults_ordering(self):
        """Cost calibration: join > window agg > flatMap > filter."""
        filter_cost = default_cost(OperatorKind.FILTER).base_cpu_s
        flatmap_cost = default_cost(OperatorKind.FLATMAP).base_cpu_s
        agg_cost = default_cost(OperatorKind.WINDOW_AGG).base_cpu_s
        join_cost = default_cost(OperatorKind.WINDOW_JOIN).base_cpu_s
        assert filter_cost < flatmap_cost < agg_cost < join_cost

    def test_stateful_ops_have_coordination(self):
        for kind in (
            OperatorKind.WINDOW_AGG,
            OperatorKind.WINDOW_JOIN,
            OperatorKind.UDO,
        ):
            assert default_cost(kind).coord_kappa > 0
        for kind in (OperatorKind.FILTER, OperatorKind.MAP):
            assert default_cost(kind).coord_kappa == 0

    def test_coordination_factor(self):
        cost = OperatorCost(base_cpu_s=1e-6, coord_kappa=0.01)
        assert cost.coordination_factor(1) == 1.0
        assert cost.coordination_factor(101) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            cost.coordination_factor(0)

    def test_scaled(self):
        cost = default_cost(OperatorKind.FILTER)
        assert cost.scaled(2.0).base_cpu_s == pytest.approx(
            2.0 * cost.base_cpu_s
        )
        with pytest.raises(ConfigurationError):
            cost.scaled(0.0)
