"""Tests for the perf harness's regression-check failure modes.

``repro bench --check`` must fail loudly — clear message, exit code 1,
no traceback — when the committed ``BENCH_engine.json`` is missing,
corrupt, or structurally wrong, instead of silently passing or crashing.
The measurement itself is monkeypatched out so these tests stay fast.
"""

from __future__ import annotations

import json

import pytest

from repro.core import perf

_FAKE_RESULTS = {
    "hotpath": {"events_per_sec": 100_000.0, "events": 1000},
    "WC": {"events_per_sec": 50_000.0, "events": 1000},
}


@pytest.fixture(autouse=True)
def _cheap_bench(monkeypatch):
    monkeypatch.setattr(
        perf, "run_engine_bench", lambda quick=False, **_: _FAKE_RESULTS
    )
    monkeypatch.setattr(perf, "calibration_score", lambda **_: 100.0)


def _committed_report() -> dict:
    return {
        "calibration_kops": 100.0,
        "quick": {"current": _FAKE_RESULTS},
    }


class TestCheckFailureModes:
    def test_missing_report_fails_loudly(self, tmp_path, capsys):
        code = perf.run_bench(
            quick=True,
            check=True,
            report_path=tmp_path / "BENCH_engine.json",
            with_sweep=False,
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "PERF CHECK FAILED" in out
        assert "does not exist" in out
        assert "repro bench --write" in out

    def test_corrupt_report_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        path.write_text('{"quick": {"current": ')
        code = perf.run_bench(
            quick=True, check=True, report_path=path, with_sweep=False
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "PERF CHECK FAILED" in out
        assert "not valid JSON" in out

    def test_non_object_report_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("[1, 2, 3]\n")
        code = perf.run_bench(
            quick=True, check=True, report_path=path, with_sweep=False
        )
        assert code == 1
        assert "JSON object" in capsys.readouterr().out

    def test_intact_report_still_passes(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(_committed_report()))
        code = perf.run_bench(
            quick=True, check=True, report_path=path, with_sweep=False
        )
        assert code == 0
        assert "perf check passed" in capsys.readouterr().out

    def test_regression_still_detected(self, tmp_path, capsys):
        report = _committed_report()
        report["quick"]["current"] = {
            "hotpath": {"events_per_sec": 1_000_000.0, "events": 1000}
        }
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(report))
        code = perf.run_bench(
            quick=True, check=True, report_path=path, with_sweep=False
        )
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_write_recreates_missing_report(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        code = perf.run_bench(
            quick=True, write=True, report_path=path, with_sweep=False
        )
        assert code == 0
        report = json.loads(path.read_text())
        assert report["quick"]["current"] == _FAKE_RESULTS


class TestCalibrationProbes:
    def test_score_is_the_median_of_three_probes(self, monkeypatch):
        probes = iter([80.0, 120.0, 100.0])
        monkeypatch.setattr(
            perf, "_calibration_probe", lambda iterations: next(probes)
        )
        details = perf.calibration_details(iterations=10, probes=3)
        assert details["kops"] == 100.0
        assert details["spread_kops"] == 40.0
        assert details["probes"] == [80.0, 100.0, 120.0]

    def test_write_records_spread(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            perf,
            "calibration_details",
            lambda **_: {
                "kops": 100.0, "spread_kops": 5.0, "probes": [1.0]
            },
        )
        path = tmp_path / "BENCH_engine.json"
        assert perf.run_bench(
            quick=True, write=True, report_path=path, with_sweep=False
        ) == 0
        report = json.loads(path.read_text())
        assert report["calibration_kops"] == 100.0
        assert report["calibration_spread_kops"] == 5.0
