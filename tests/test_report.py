"""Tests for the reporting layer: tables, figures, the Table 1 matrix."""

import pytest

from repro.common.errors import ConfigurationError
from repro.report import (
    TABLE1_ROWS,
    FigureData,
    Series,
    pdsp_bench_claims,
    render_figure,
    render_table,
)
from repro.report.related_work import render_table1


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(
            ["name", "value"], [["a", 1.5], ["b", 20.0]], title="T"
        )
        assert "T" in text
        assert "name" in text and "value" in text
        assert "1.500" in text and "20.0" in text

    def test_large_numbers_grouped(self):
        text = render_table(["v"], [[1234567.0]])
        assert "1,234,567" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_empty_rows_ok(self):
        assert "a" in render_table(["a"], [])


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series("s", [1, 2], [1.0])

    def test_value_at(self):
        series = Series("s", ["XS", "S"], [1.0, 2.0])
        assert series.value_at("S") == 2.0
        with pytest.raises(ConfigurationError):
            series.value_at("XXL")


class TestFigureData:
    def _figure(self):
        return FigureData(
            figure_id="figX",
            title="demo",
            x_label="x",
            y_label="y",
            series=[
                Series("a", [1, 2], [10.0, 20.0]),
                Series("b", [1, 2], [30.0, 40.0]),
            ],
        )

    def test_shared_x_validates(self):
        assert self._figure().shared_x() == [1, 2]
        broken = FigureData(
            "f", "t", "x", "y",
            series=[
                Series("a", [1], [1.0]),
                Series("b", [2], [1.0]),
            ],
        )
        with pytest.raises(ConfigurationError, match="mismatched"):
            broken.shared_x()

    def test_series_lookup(self):
        figure = self._figure()
        assert figure.series_by_label("b").y == [30.0, 40.0]
        with pytest.raises(ConfigurationError):
            figure.series_by_label("zzz")

    def test_render_figure_layout(self):
        text = render_figure(self._figure())
        assert "figX" in text
        assert "| a" in text or "a " in text
        assert "10.0" in text

    def test_to_document(self):
        doc = self._figure().to_document()
        assert doc["figure_id"] == "figX"
        assert len(doc["series"]) == 2

    def test_empty_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            FigureData("f", "t", "x", "y").shared_x()


class TestTable1:
    def test_eleven_rows(self):
        assert len(TABLE1_ROWS) == 11
        assert TABLE1_ROWS[-1].system == "PDSP-Bench"

    def test_only_pdsp_bench_has_learned_models(self):
        learned = [r.system for r in TABLE1_ROWS if r.learned_models]
        assert learned == ["PDSP-Bench"]

    def test_claims_verified_against_codebase(self):
        """The Table 1 PDSP-Bench row must be true of this repo."""
        claims = pdsp_bench_claims()
        from repro.apps import REGISTRY
        from repro.workload import QueryStructure
        from repro.cluster import heterogeneous_cluster, homogeneous_cluster
        from repro.ml.models import default_models

        assert len(REGISTRY) == claims["real_world_apps"]
        assert len(list(QueryStructure)) == claims["synthetic_apps"]
        assert claims["integrates_learned_models"]
        assert len(default_models()) == 4
        assert homogeneous_cluster().is_heterogeneous is False
        assert heterogeneous_cluster().is_heterogeneous is True

    def test_render_table1(self):
        text = render_table1()
        assert "PDSP-Bench" in text
        assert "DSPBench" in text
