"""Property suite: sharded execution ≡ serial (DESIGN.md §14).

The shard universe (``SimulationConfig(shards=K)``) must be invariant
in K and in the transport: for generated plans, ``K ∈ {2, 4}`` runs —
in-process and forked — produce bit-identical metrics, sink statistics,
``extras`` schemas and DET609 RNG ledgers to the ``K=1`` single-kernel
reference. The legacy ``shards=None`` path is pinned separately by the
byte-identical goldens in ``test_golden_determinism.py``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.kernel import Kernel
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


class DrawingLogic(OperatorLogic):
    """A clean stochastic UDO: draws from its own subtask stream."""

    def process(self, tup, now, port=0):
        if self.ctx.rng.random() < 0.9:
            return [tup]
        return []


def generated_plan(parallelism, num_keys, windowed, with_udo):
    plan = LogicalPlan("shard-prop")
    plan.add_operator(
        builders.source(
            "src", kv_generator(num_keys), SCHEMA, event_rate=400.0,
            parallelism=parallelism,
        )
    )
    upstream = "src"
    if with_udo:
        plan.add_operator(
            builders.udo(
                "udo", DrawingLogic, parallelism=parallelism,
                output_schema=SCHEMA,
            )
        )
        plan.connect("src", "udo")
        upstream = "udo"
    if windowed:
        plan.add_operator(
            builders.window_agg(
                "agg",
                TumblingTimeWindows(0.25),
                AggregateFunction.SUM,
                value_field=1,
                key_field=0,
                parallelism=parallelism,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect(upstream, "agg")
        plan.connect("agg", "sink")
    else:
        plan.add_operator(builders.sink("sink"))
        plan.connect(upstream, "sink")
    return plan


def run_sharded(
    plan,
    nodes,
    shards,
    seed,
    force_inline=True,
    tuples=150,
    keep_values=False,
):
    config = SimulationConfig(
        max_tuples_per_source=tuples,
        max_sim_time=2.0,
        shards=shards,
        keep_sink_values=keep_values,
    )
    engine = StreamEngine(
        plan,
        homogeneous_cluster("m510", nodes),
        config=config,
        rng_factory=RngFactory(seed),
    )
    engine.shard_force_inline = force_inline
    metrics = engine.run()
    return metrics, engine


def signature(metrics, engine):
    """Everything that must be invariant across K and transports."""
    sinks = []
    for runtime in engine._runtimes:
        logic = runtime.logic
        if hasattr(logic, "latencies") and hasattr(logic, "received"):
            sinks.append(
                (
                    logic.received,
                    tuple(logic.latencies),
                    tuple(logic.arrival_times),
                    tuple(map(repr, logic.results)),
                )
            )
    return (
        metrics.results,
        metrics.source_events,
        metrics.throughput,
        metrics.sim_duration,
        metrics.latency.mean,
        metrics.latency.p50,
        metrics.latency.p99,
        metrics.extras["events_processed"],
        metrics.extras["shards"]["epochs"],
        metrics.extras["shards"]["flush_rounds"],
        tuple(sorted(metrics.operator_utilization.items())),
        tuple(sorted(metrics.operator_queue_peak.items())),
        tuple(sorted(metrics.operator_avg_wait.items())),
        tuple(sorted(engine._shard_ledger.items())),
        tuple(sinks),
    )


class TestShardCountInvariance:
    @given(
        parallelism=st.integers(min_value=1, max_value=3),
        num_keys=st.integers(min_value=1, max_value=8),
        windowed=st.booleans(),
        with_udo=st.booleans(),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=8, deadline=None)
    def test_two_shards_inline_match_single(
        self, parallelism, num_keys, windowed, with_udo, seed
    ):
        plan = generated_plan(parallelism, num_keys, windowed, with_udo)
        reference = signature(*run_sharded(plan, 2, 1, seed))
        assert signature(*run_sharded(plan, 2, 2, seed)) == reference

    @given(
        num_keys=st.integers(min_value=1, max_value=8),
        windowed=st.booleans(),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=4, deadline=None)
    def test_four_shards_inline_match_single(
        self, num_keys, windowed, seed
    ):
        plan = generated_plan(4, num_keys, windowed, True)
        reference = signature(*run_sharded(plan, 4, 1, seed))
        assert signature(*run_sharded(plan, 4, 4, seed)) == reference

    def test_extras_schema_differs_only_in_shard_count(self):
        plan = generated_plan(2, 4, True, False)
        m1, _ = run_sharded(plan, 2, 1, seed=3)
        m2, _ = run_sharded(plan, 2, 2, seed=3)
        s1, s2 = m1.extras["shards"], m2.extras["shards"]
        assert set(s1) == set(s2) == {"shards", "epochs", "flush_rounds"}
        assert s1["shards"] == 1 and s2["shards"] == 2
        assert s1["epochs"] == s2["epochs"]
        assert s1["flush_rounds"] == s2["flush_rounds"]


class TestForkedTransport:
    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=3, deadline=None)
    def test_forked_matches_inline(self, seed):
        plan = generated_plan(3, 6, True, True)
        inline = signature(*run_sharded(plan, 2, 2, seed, True))
        forked = signature(*run_sharded(plan, 2, 2, seed, False))
        assert forked == inline

    def test_forked_four_shards(self):
        plan = generated_plan(4, 5, True, False)
        inline = signature(*run_sharded(plan, 4, 4, 9, True))
        forked = signature(*run_sharded(plan, 4, 4, 9, False))
        assert forked == inline


class TestKernelExtractionPins:
    def test_engine_runs_on_the_extracted_kernel(self):
        """The stream runtime is a client of repro.kernel, not a fork
        of it (the byte-identical goldens in
        test_golden_determinism.py pin the extraction's results)."""
        plan = generated_plan(2, 4, True, False)
        config = SimulationConfig(max_tuples_per_source=50)
        engine = StreamEngine(
            plan,
            homogeneous_cluster("m510", 2),
            config=config,
            rng_factory=RngFactory(0),
        )
        assert isinstance(engine._k, Kernel)
        engine.run()
        assert engine._events_processed == engine._k.events_processed


class TestRunnerIntegration:
    def test_runner_shards_with_sanitize_det609(self):
        """The DET609 cross-check path: a forked sharded run's ledger
        is compared against the in-process reference rerun."""
        plan = generated_plan(2, 4, True, True)
        runner = BenchmarkRunner(
            homogeneous_cluster("m510", 2),
            RunnerConfig(
                repeats=1,
                max_tuples_per_source=120,
                max_sim_time=2.0,
                seed=5,
                shards=2,
                sanitize=True,
            ),
        )
        runs = runner.run_plan(plan)
        assert runs[0].extras["race"]["findings"] == []
        assert runs[0].extras["shards"]["shards"] == 2

    def test_runner_config_rejects_shards_with_workers(self):
        with pytest.raises(ConfigurationError):
            RunnerConfig(shards=2, workers=2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"observe": True},
            {"batch_size": 64},
            {"autoscale": "reactive:high=4"},
            {"scenario": "spike:at=0.5"},
            {"checkpoint_ms": 50.0},
        ],
    )
    def test_runner_config_rejects_incompatible_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            RunnerConfig(shards=2, **kwargs)

    def test_runner_config_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError):
            RunnerConfig(shards=0)

    def test_engine_rejects_more_shards_than_nodes(self):
        plan = generated_plan(2, 4, False, False)
        with pytest.raises(ConfigurationError):
            run_sharded(plan, 2, 4, seed=0)


class TestSinkMultisets:
    def test_sink_results_multiset_equal_across_transports(self):
        plan = generated_plan(3, 8, True, False)
        _, inline_engine = run_sharded(
            plan, 2, 2, 11, True, keep_values=True
        )
        _, forked_engine = run_sharded(
            plan, 2, 2, 11, False, keep_values=True
        )

        def multiset(engine):
            items = []
            for runtime in engine._runtimes:
                logic = runtime.logic
                if hasattr(logic, "results"):
                    items.extend(map(repr, logic.results))
            return sorted(items)

        assert multiset(inline_engine) == multiset(forked_engine)
        assert multiset(inline_engine)  # non-vacuous
