"""Tests for the determinism sanitizer's static AST pass (DET601-606)."""

from pathlib import Path

import pytest

from repro.analysis import RULE_CATALOG, Severity
from repro.analysis.sanitizer import (
    sanitize_app,
    sanitize_callable,
    sanitize_file,
    sanitize_paths,
    sanitize_plan_sources,
    sanitize_source,
)
from repro.apps import REGISTRY, build_app
from repro.sps.operators.udo import FunctionUDO

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(source: str) -> list[str]:
    return [d.code for d in sanitize_source(source, "snippet.py")]


class TestRuleCatalogue:
    def test_det_family_registered(self):
        det = [c for c in RULE_CATALOG if c.startswith("DET")]
        assert det == [f"DET60{i}" for i in range(1, 10)]

    def test_severities(self):
        assert RULE_CATALOG["DET601"].severity is Severity.ERROR
        assert RULE_CATALOG["DET602"].severity is Severity.ERROR
        assert RULE_CATALOG["DET603"].severity is Severity.WARNING
        assert RULE_CATALOG["DET607"].severity is Severity.ERROR
        assert RULE_CATALOG["DET609"].severity is Severity.ERROR


class TestDet601UnseededRng:
    def test_stdlib_random_draw(self):
        assert codes("import random\nx = random.random()\n") == ["DET601"]

    def test_stdlib_random_aliased(self):
        src = "import random as r\ndef f():\n    return r.choice([1])\n"
        assert codes(src) == ["DET601"]

    def test_numpy_global_draw(self):
        src = "import numpy as np\ndef f():\n    return np.random.rand()\n"
        assert codes(src) == ["DET601"]

    def test_from_import_draw(self):
        src = "from random import shuffle\nshuffle([1, 2])\n"
        assert codes(src) == ["DET601"]

    def test_seeded_default_rng_allowed(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert codes(src) == []

    def test_generator_draws_allowed(self):
        src = (
            "def f(rng):\n"
            "    return rng.random() + rng.integers(10)\n"
        )
        assert codes(src) == []


class TestDet602WallClock:
    OPERATOR = (
        "import time\n"
        "class FooLogic(OperatorLogic):\n"
        "    def process(self, tup, now, port=0):\n"
        "        return [time.time()]\n"
    )

    def test_wall_clock_in_operator(self):
        assert codes(self.OPERATOR) == ["DET602"]

    def test_datetime_now_in_operator(self):
        src = (
            "from datetime import datetime\n"
            "class FooUDO(Base):\n"
            "    def process(self, tup, now):\n"
            "        return datetime.now()\n"
        )
        assert codes(src) == ["DET602"]

    def test_wall_clock_outside_operators_allowed(self):
        # Benchmark harness timing (core/perf.py, ml fit) is legitimate.
        src = "import time\ndef bench():\n    return time.perf_counter()\n"
        assert codes(src) == []


class TestDet603SetOrder:
    def test_for_over_set_literal(self):
        assert codes("for x in {1, 2}:\n    pass\n") == ["DET603"]

    def test_list_of_module_set(self):
        assert codes("S = {1, 2}\nwords = list(S)\n") == ["DET603"]

    def test_join_over_set(self):
        assert codes("s = ','.join({'a', 'b'})\n") == ["DET603"]

    def test_comprehension_over_set(self):
        src = "def f():\n    return [x for x in {1, 2}]\n"
        assert codes(src) == ["DET603"]

    def test_set_union_tracked(self):
        src = "A = {1}\nB = {2}\nwords = list(A | B)\n"
        assert codes(src) == ["DET603"]

    def test_sorted_is_the_fix(self):
        assert codes("S = {1, 2}\nwords = sorted(S)\n") == []

    def test_membership_only_is_fine(self):
        src = "S = {1, 2}\ndef f(x):\n    return x in S\n"
        assert codes(src) == []


class TestDet604MutableGlobals:
    def test_mutating_module_dict_from_operator(self):
        src = (
            "CACHE = {}\n"
            "class FooLogic(Base):\n"
            "    def process(self, tup, now):\n"
            "        CACHE.update({1: 2})\n"
        )
        assert codes(src) == ["DET604"]

    def test_subscript_store_from_operator(self):
        src = (
            "CACHE = {}\n"
            "def process(tup, now):\n"
            "    CACHE[tup] = 1\n"
        )
        assert codes(src) == ["DET604"]

    def test_global_statement_in_operator(self):
        src = "N = 0\ndef process(tup, now):\n    global N\n    return N\n"
        assert codes(src) == ["DET604"]

    def test_mutable_class_attr_on_operator_class(self):
        src = "class FooLogic(OperatorLogic):\n    shared = []\n"
        assert codes(src) == ["DET604"]

    def test_reading_module_constant_allowed(self):
        src = (
            "WORDS = ('a', 'b')\n"
            "def process(tup, now):\n"
            "    return WORDS[0]\n"
        )
        assert codes(src) == []


class TestDet605HashOrderKeys:
    def test_id_in_operator(self):
        src = (
            "class L(OperatorLogic):\n"
            "    def process(self, t, now):\n"
            "        return id(t)\n"
        )
        assert codes(src) == ["DET605"]

    def test_hash_in_operator(self):
        src = "def process(tup, now):\n    return hash(tup)\n"
        assert codes(src) == ["DET605"]

    def test_dunder_hash_exempt(self):
        src = (
            "class Key:\n"
            "    def __hash__(self):\n"
            "        return hash(self.v)\n"
        )
        assert codes(src) == []


class TestDet606ForkUnsafe:
    def test_module_level_open(self):
        assert codes("f = open('/tmp/x')\n") == ["DET606"]

    def test_module_level_lock(self):
        src = "import threading\nLOCK = threading.Lock()\n"
        assert codes(src) == ["DET606"]

    def test_open_inside_function_allowed(self):
        src = "def load():\n    with open('x') as f:\n        return f\n"
        assert codes(src) == []


class TestSuppression:
    def test_bare_marker(self):
        src = "S = {1}\nwords = list(S)  # dsan: ok\n"
        assert codes(src) == []

    def test_marker_with_matching_code(self):
        src = "S = {1}\nwords = list(S)  # dsan: ok DET603\n"
        assert codes(src) == []

    def test_marker_with_other_code_does_not_suppress(self):
        src = "S = {1}\nwords = list(S)  # dsan: ok DET601\n"
        assert codes(src) == ["DET603"]


class TestDiagnosticShape:
    def test_location_is_file_and_line(self):
        report = sanitize_source("import random\nx = random.random()\n",
                                 "pkg/mod.py")
        (diag,) = report.diagnostics
        assert diag.op_id == "pkg/mod.py:2"
        assert diag.location == "pkg/mod.py:2"

    def test_syntax_error_reported_not_raised(self):
        report = sanitize_source("def broken(:\n", "bad.py")
        assert report.has_errors

    def test_hint_comes_from_catalogue(self):
        report = sanitize_source("import random\nx = random.random()\n")
        (diag,) = report.diagnostics
        assert diag.hint == RULE_CATALOG["DET601"].rationale


class TestFileAndTreeScanning:
    def test_sanitize_file(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("import random\nx = random.random()\n")
        report = sanitize_file(target)
        assert [d.code for d in report] == ["DET601"]

    def test_sanitize_paths_walks_directories(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("for x in {1, 2}:\n    pass\n")
        reports = sanitize_paths([tmp_path])
        assert len(reports) == 2
        by_name = {Path(name).name: rep for name, rep in reports}
        assert by_name["ok.py"].is_clean
        assert [d.code for d in by_name["bad.py"]] == ["DET603"]

    def test_whole_tree_is_clean(self):
        reports = sanitize_paths([SRC_ROOT])
        dirty = [
            (name, rep.format())
            for name, rep in reports
            if not rep.is_clean
        ]
        assert not dirty, dirty


class TestCallableAndAppScanning:
    def test_function_udo_targets_scanned(self):
        import random  # noqa: F401 - exercised via the UDO body

        def bad_udo(state, tup, now):
            import random

            return [tup] if random.random() > 0.5 else []

        udo = FunctionUDO(bad_udo)
        report = sanitize_callable(udo)
        assert "DET601" in report.codes()

    def test_clean_callable(self):
        def clean_udo(state, tup, now):
            state["n"] = state.get("n", 0) + 1
            return [tup]

        assert sanitize_callable(FunctionUDO(clean_udo)).is_clean

    def test_builtin_without_source_is_empty_report(self):
        assert sanitize_callable(len).is_clean

    @pytest.mark.parametrize("abbrev", sorted(REGISTRY))
    def test_every_app_module_clean(self, abbrev):
        report = sanitize_app(abbrev)
        assert report.plan_name == abbrev
        assert not report.has_errors, report.format()
        assert not report.warnings(), report.format()

    def test_plan_sources_scan(self):
        app = build_app("WC", event_rate=1000.0)
        report = sanitize_plan_sources(app.plan)
        assert report.plan_name == app.plan.name
        assert not report.has_errors

    def test_plan_sources_cached_across_calls(self):
        app = build_app("SA", event_rate=1000.0)
        first = sanitize_plan_sources(app.plan)
        second = sanitize_plan_sources(app.plan)
        assert len(first) == len(second)
