"""Tests for the sustainable-throughput search."""

import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.core.throughput import ThroughputResult, sustainable_throughput

# Generous sim-time horizon: low rungs of the rate ladder need long
# simulated streams before keyed operators (SG's 800 plugs) warm up.
QUICK = RunnerConfig(
    repeats=1, dilation=25.0, max_tuples_per_source=4000,
    max_sim_time=150.0,
)


@pytest.fixture
def runner():
    return BenchmarkRunner(homogeneous_cluster("m510", 4), QUICK)


class TestSustainableThroughput:
    def test_finds_saturation_boundary(self, runner):
        # SG at parallelism 2 saturates quickly: the sustainable rate
        # must be far below the top of the ladder.
        result = sustainable_throughput(
            runner,
            "SG",
            parallelism=2,
            rates=(1_000.0, 10_000.0, 100_000.0, 1_000_000.0),
            refine_steps=1,
        )
        assert result.sustainable_rate < 1_000_000.0
        assert result.baseline_latency_ms > 0
        assert len(result.probed) >= 3

    def test_parallelism_raises_throughput(self, runner):
        ladder = (1_000.0, 5_000.0, 20_000.0, 80_000.0, 320_000.0)
        low = sustainable_throughput(
            runner, "SD", parallelism=1, rates=ladder, refine_steps=0
        )
        high = sustainable_throughput(
            runner, "SD", parallelism=8, rates=ladder, refine_steps=0
        )
        assert high.sustainable_rate > low.sustainable_rate

    def test_unsaturated_app_reaches_top(self, runner):
        result = sustainable_throughput(
            runner,
            "LP",
            parallelism=4,
            rates=(1_000.0, 5_000.0, 20_000.0),
            refine_steps=0,
        )
        assert result.sustainable_rate == 20_000.0

    def test_describe(self, runner):
        result = ThroughputResult(
            sustainable_rate=50_000.0,
            baseline_latency_ms=10.0,
            latency_at_limit_ms=25.0,
            probed=((1_000.0, 10.0),),
        )
        assert "50,000" in result.describe()

    def test_validation(self, runner):
        with pytest.raises(ConfigurationError):
            sustainable_throughput(
                runner, "WC", 1, rates=(5_000.0, 1_000.0)
            )
        with pytest.raises(ConfigurationError):
            sustainable_throughput(
                runner, "WC", 1, rates=(1.0, 2.0), latency_factor=0.5
            )
