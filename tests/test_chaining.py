"""Tests for operator chaining (task fusion)."""

import numpy as np
import pytest

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.chaining import ChainedLogic, compute_chains, fused_cost
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorContext
from repro.sps.operators.filter_op import FilterLogic
from repro.sps.operators.map_op import MapLogic
from repro.sps.physical import PhysicalPlan
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def chainable_plan(parallelism=2):
    """source -> filter -> map -> filter -> sink, all forward-connected."""
    plan = LogicalPlan("chainable")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=2000.0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "f1",
            Predicate(1, FilterFunction.GT, 0.2, selectivity_hint=0.8),
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.map_op(
            "m1", lambda values: (values[0], values[1] * 2.0),
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "f2",
            Predicate(1, FilterFunction.LT, 1.0, selectivity_hint=0.6),
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "f1")
    plan.connect("f1", "m1")
    plan.connect("m1", "f2")
    plan.connect("f2", "sink")
    return plan


class TestComputeChains:
    def test_detects_maximal_chain(self):
        chains = compute_chains(chainable_plan())
        assert chains == {"f1": ["f1", "m1", "f2"]}

    def test_parallelism_mismatch_breaks_chain(self):
        plan = chainable_plan()
        plan.set_parallelism({"m1": 4})  # forward edges downgraded
        chains = compute_chains(plan)
        assert "m1" not in chains.get("f1", ["f1"])

    def test_stateful_ops_not_fused(self, simple_plan):
        # simple_plan's agg is stateful (hash exchange): no chains form.
        assert compute_chains(simple_plan) == {}

    def test_fan_out_breaks_chain(self):
        plan = chainable_plan()
        # Add a second consumer of m1: m1 can no longer fuse f2.
        plan.add_operator(builders.sink("sink2"))
        plan.connect("m1", "sink2")
        chains = compute_chains(plan)
        assert chains == {"f1": ["f1", "m1"]}


class TestFusedExecution:
    def test_chained_physical_plan_has_fewer_subtasks(self):
        plan = chainable_plan(parallelism=2)
        unchained = PhysicalPlan.from_logical(plan)
        chained = PhysicalPlan.from_logical(plan, chaining=True)
        assert chained.num_subtasks == unchained.num_subtasks - 4
        assert "m1" not in chained.op_subtasks
        assert "f2" not in chained.op_subtasks

    def test_downstream_edges_rewired_to_head(self):
        plan = chainable_plan(parallelism=2)
        chained = PhysicalPlan.from_logical(plan, chaining=True)
        head_gid = chained.op_subtasks["f1"][0]
        groups = chained.out_channels[head_gid]
        assert len(groups) == 1
        assert groups[0].edge.src == "f2"  # last member's out-edge
        assert groups[0].edge.dst == "sink"

    def test_fused_cost_sums(self):
        plan = chainable_plan()
        members = [plan.operator(op) for op in ("f1", "m1", "f2")]
        cost = fused_cost(members)
        assert cost.base_cpu_s == pytest.approx(
            sum(op.cost.base_cpu_s for op in members)
        )

    def test_results_identical_with_and_without_chaining(self):
        """Chaining is an execution optimization: the query's results

        must not change."""

        def run(chaining):
            engine = StreamEngine(
                chainable_plan(parallelism=2),
                homogeneous_cluster(num_nodes=2),
                config=SimulationConfig(
                    max_tuples_per_source=800,
                    max_sim_time=3.0,
                    warmup_fraction=0.0,
                ),
                rng_factory=RngFactory(9),
                chaining=chaining,
            )
            return engine.run()

        plain = run(False)
        fused = run(True)
        assert fused.results == plain.results

    def test_chaining_reduces_latency(self):
        """Interior chain edges become function calls: the cross-node

        hops (and their network latency) of the unchained pipeline
        disappear. A 3-node cluster misaligns the round-robin placement
        so the forward hops do cross nodes."""

        def median(chaining):
            engine = StreamEngine(
                chainable_plan(parallelism=2),
                homogeneous_cluster(num_nodes=3),
                config=SimulationConfig(
                    max_tuples_per_source=1500, max_sim_time=3.0
                ),
                rng_factory=RngFactory(9),
                chaining=chaining,
            )
            return engine.run().latency.p50

        assert median(True) < 0.7 * median(False)


class TestChainedLogic:
    def ctx(self):
        return OperatorContext(
            op_id="chain", subtask_index=0, parallelism=1,
            rng=np.random.default_rng(0),
        )

    def _chain(self):
        logic = ChainedLogic(
            [
                FilterLogic(Predicate(0, FilterFunction.GT, 10)),
                MapLogic(lambda values: (values[0] * 2,)),
            ]
        )
        logic.setup(self.ctx())
        return logic

    def test_pipeline_order(self):
        logic = self._chain()
        out = logic.process(
            StreamTuple(values=(20,), event_time=0.0), 0.0
        )
        assert out[0].values == (40,)

    def test_filter_short_circuits(self):
        logic = self._chain()
        assert logic.process(
            StreamTuple(values=(5,), event_time=0.0), 0.0
        ) == []

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ChainedLogic([])

    def test_flush_traverses_tail(self):
        from repro.sps.operators.aggregate import WindowAggregateLogic
        from repro.sps.windows import (
            AggregateFunction,
            TumblingTimeWindows,
        )

        # agg (stateful) followed by a doubling map: flush output of the
        # agg must pass through the map. (Stateful heads are possible in
        # ChainedLogic even though compute_chains never fuses them as
        # tails.)
        logic = ChainedLogic(
            [
                WindowAggregateLogic(
                    TumblingTimeWindows(1.0),
                    AggregateFunction.SUM,
                    value_field=1,
                    key_field=0,
                ),
                MapLogic(lambda values: (values[0], values[1] * 2.0)),
            ]
        )
        logic.setup(self.ctx())
        logic.process(
            StreamTuple(values=("a", 3.0), event_time=0.1), now=0.1
        )
        out = logic.flush(now=0.5)
        assert out[0].values == ("a", 6.0)
