"""Unit tests for the extracted discrete-event kernel (repro.kernel).

The kernel knows nothing about streams: these tests drive it with
synthetic events, pinning the semantics the stream runtime (and the
sharded transports) were re-registered on top of — heap ordering,
tie-breaks, the strict ``until`` boundary, the event budget, the work
mask, and the lossless cross-shard wire codec.
"""

import math
import pickle

import pytest

from repro.common.errors import ConfigurationError
from repro.kernel import BudgetExceededError, Kernel, partition_nodes
from repro.kernel.wire import decode_batch, encode_batch
from repro.sps.tuples import StreamTuple

# Two event kinds: kind 0 counts as work, kind 1 (a "timer") does not.
WORK_MASK = (True, False)


def make_kernel() -> Kernel:
    return Kernel(WORK_MASK)


def handlers(log, kernel):
    def on_work(gid, payload, port):
        log.append(("work", kernel.now, gid, payload, port))

    def on_timer(gid, payload, port):
        log.append(("timer", kernel.now, gid, payload, port))

    return [on_work, on_timer]


class TestKernelOrdering:
    def test_events_pop_in_time_order(self):
        k = make_kernel()
        log = []
        for t in (3.0, 1.0, 2.0):
            k.push(t, 0, 0, t, 0)
        k.run(handlers(log, k), max_events=10)
        assert [e[1] for e in log] == [1.0, 2.0, 3.0]
        assert k.now == 3.0
        assert k.events_processed == 3

    def test_equal_time_orders_by_insertion_seq(self):
        k = make_kernel()
        log = []
        for i in range(5):
            k.push(1.0, 0, i, None, 0)
        k.run(handlers(log, k), max_events=10)
        assert [e[2] for e in log] == [0, 1, 2, 3, 4]

    def test_push_tb_orders_by_caller_tiebreak(self):
        """(origin gid, origin seq) tie-breaks are what make the shard
        universe invariant in the shard count: insertion order differs
        across partitions, the tie-break does not."""
        k = make_kernel()
        log = []
        # Insert in an order scrambled relative to the tie-breaks.
        k.push_tb(1.0, (2, 0), 0, 0, "c", 0)
        k.push_tb(1.0, (1, 1), 0, 0, "b", 0)
        k.push_tb(1.0, (1, 0), 0, 0, "a", 0)
        k.run(handlers(log, k), max_events=10)
        assert [e[3] for e in log] == ["a", "b", "c"]

    def test_work_mask_counts_only_work_kinds(self):
        k = make_kernel()
        k.push(1.0, 0, 0, None, 0)  # work
        k.push(2.0, 1, 0, None, 0)  # timer
        assert k.work == 1
        log = []
        k.run(handlers(log, k), max_events=10)
        assert k.work == 0
        assert len(log) == 2

    def test_on_idle_fires_when_work_drains(self):
        k = make_kernel()
        idle_at = []
        k.push(1.0, 0, 0, None, 0)
        k.push(2.0, 1, 0, None, 0)  # timer remains after work drains

        def on_idle():
            idle_at.append(k.now)

        k.run(handlers([], k), max_events=10, on_idle=on_idle)
        # Idle fired when the last *work* event (t=1.0) completed.
        assert idle_at and idle_at[0] == 1.0


class TestKernelBoundaries:
    def test_until_is_strict(self):
        """Events at exactly the boundary stay for the next epoch —
        the conservative protocol drains strictly below it."""
        k = make_kernel()
        log = []
        k.push(1.0, 0, 0, None, 0)
        k.push(2.0, 0, 0, None, 0)
        k.run(handlers(log, k), max_events=10, until=2.0)
        assert [e[1] for e in log] == [1.0]
        assert k.next_event_time() == 2.0
        k.run(handlers(log, k), max_events=10, until=3.0)
        assert [e[1] for e in log] == [1.0, 2.0]

    def test_events_processed_accumulates_across_epochs(self):
        k = make_kernel()
        for t in (1.0, 2.0, 3.0):
            k.push(t, 0, 0, None, 0)
        k.run(handlers([], k), max_events=10, until=2.5)
        assert k.events_processed == 2
        k.run(handlers([], k), max_events=10)
        assert k.events_processed == 3

    def test_budget_exceeded_raises(self):
        k = make_kernel()
        for i in range(5):
            k.push(float(i), 0, 0, None, 0)
        with pytest.raises(BudgetExceededError):
            k.run(handlers([], k), max_events=3)

    def test_next_event_time_empty_is_inf(self):
        assert make_kernel().next_event_time() == math.inf

    def test_reset_clears_everything(self):
        k = make_kernel()
        k.push(1.0, 0, 0, None, 0)
        k.run(handlers([], k), max_events=10)
        k.reset()
        assert k.now == 0.0
        assert k.work == 0
        assert k.next_event_time() == math.inf


class TestPartitioning:
    def test_round_robin_over_sorted_nodes(self):
        assert partition_nodes([3, 1, 2, 1], 2) == {1: 0, 2: 1, 3: 0}

    def test_rejects_more_shards_than_nodes(self):
        with pytest.raises(ConfigurationError):
            partition_nodes([0, 1], 3)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError):
            partition_nodes([0, 1], 0)


def message(at, origin, oseq, dst, port, values, key):
    tup = StreamTuple(values=values, key=key, event_time=at - 0.5,
                      size_bytes=24.0)
    tup.origin_time = at - 1.0
    return (at, origin, oseq, dst, port, tup)


class TestWireCodec:
    def roundtrip(self, messages):
        decoded = decode_batch(encode_batch(messages))
        assert len(decoded) == len(messages)
        for orig, got in zip(messages, decoded):
            assert got[:5] == orig[:5]
            a, b = orig[5], got[5]
            assert b.values == a.values
            assert b.key == a.key
            assert b.event_time == a.event_time
            assert b.origin_time == a.origin_time
            assert b.size_bytes == a.size_bytes
            for x, y in zip(a.values + (a.key,), b.values + (b.key,)):
                assert type(x) is type(y)
        return decoded

    def test_numeric_roundtrip_bit_identical(self):
        msgs = [
            message(0.1 * i + 1e-9, i, i * 7, i % 3, 0,
                    (i, 0.1 * i, float(i) ** 0.5), i % 5)
            for i in range(20)
        ]
        self.roundtrip(msgs)

    def test_mixed_signatures_restore_original_order(self):
        msgs = [
            message(1.0, 0, 0, 1, 0, (1, 2.0), 7),
            message(1.1, 0, 1, 1, 0, ("word", 3), "word"),
            message(1.2, 0, 2, 1, 0, (4, 5.0), 8),
            message(1.3, 0, 3, 1, 0, ("other", 9), "other"),
        ]
        decoded = self.roundtrip(msgs)
        assert [m[2] for m in decoded] == [0, 1, 2, 3]

    def test_strings_with_embedded_separator(self):
        msgs = [
            message(1.0, 0, 0, 1, 0, ("a\x00b",), "k\x00"),
            message(1.1, 0, 1, 1, 0, ("plain",), "also\x00weird"),
        ]
        self.roundtrip(msgs)

    def test_bool_column_is_not_int(self):
        msgs = [
            message(1.0, 0, 0, 1, 0, (True, 1), 0),
            message(1.1, 0, 1, 1, 0, (False, 2), 0),
        ]
        decoded = self.roundtrip(msgs)
        assert decoded[0][5].values[0] is True
        assert decoded[1][5].values[0] is False

    def test_none_and_pickle_fallback(self):
        big = 2 ** 70  # outside int64: forces the object column
        msgs = [
            message(1.0, 0, 0, 1, 0, (None, big, (1, 2)), None),
            message(1.1, 0, 1, 1, 0, (None, -big, (3,)), None),
        ]
        self.roundtrip(msgs)

    def test_envelope_floats_bit_identical(self):
        at = 0.1 + 0.2  # a value with an inexact binary expansion
        msgs = [message(at, 5, 9, 2, 3, (1.0 / 3.0,), 0)]
        decoded = self.roundtrip(msgs)
        assert decoded[0][0].hex() == at.hex()
        assert decoded[0][5].values[0].hex() == (1.0 / 3.0).hex()

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_batch(b"XXXX" + b"\x00" * 8)

    def test_wire_blob_is_not_a_pickle_stream(self):
        """The fast path must stay pickle-free (the fallback column is
        the documented exception): the blob must not be loadable."""
        msgs = [message(1.0, 0, 0, 1, 0, (1, 2.0), 3)]
        blob = encode_batch(msgs)
        with pytest.raises(Exception):
            pickle.loads(blob)
