"""Shared fixtures for the test suite.

Also registers hypothesis profiles: the ``ci`` profile (selected with
``HYPOTHESIS_PROFILE=ci``, as the CI workflow does) derandomizes every
property test, prints the reproduction blob on failure and drops the
per-example deadline — so a CI failure is deterministic, diagnosable
from the log alone, and never a flake from a slow shared runner.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

try:  # pragma: no cover - exercised only when hypothesis is present
    from hypothesis import settings as _hyp_settings

    _hyp_settings.register_profile(
        "ci",
        derandomize=True,
        print_blob=True,
        deadline=None,
    )
    _hyp_settings.register_profile("dev", print_blob=True)
    _hyp_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "dev")
    )
except ImportError:  # pragma: no cover
    pass

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.core.runner import RunnerConfig
from repro.sps import builders
from repro.sps.engine import SimulationConfig
from repro.sps.logical import LogicalPlan
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def rngs() -> RngFactory:
    """A deterministic RNG factory."""
    return RngFactory(1234)


@pytest.fixture
def small_cluster():
    """A 4-node m510 cluster — fast to simulate."""
    return homogeneous_cluster("m510", num_nodes=4)


@pytest.fixture
def kv_schema() -> Schema:
    """(int key, double value) schema used across engine tests."""
    return Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def kv_generator(num_keys: int = 10):
    """A (rng, now) -> StreamTuple generator over the kv schema."""

    def generate(gen_rng: np.random.Generator, now: float) -> StreamTuple:
        return StreamTuple(
            values=(int(gen_rng.integers(num_keys)),
                    float(gen_rng.random())),
            event_time=now,
            size_bytes=24.0,
        )

    return generate


@pytest.fixture
def simple_plan(kv_schema) -> LogicalPlan:
    """source -> filter -> windowed sum -> sink, all at parallelism 2."""
    plan = LogicalPlan("test-plan")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), kv_schema, event_rate=2000.0,
            parallelism=2,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "flt",
            Predicate(1, FilterFunction.GT, 0.5, selectivity_hint=0.5),
            parallelism=2,
        )
    )
    plan.add_operator(
        builders.window_agg(
            "agg",
            TumblingTimeWindows(0.1),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            parallelism=2,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "flt")
    plan.connect("flt", "agg")
    plan.connect("agg", "sink")
    return plan


@pytest.fixture
def quick_sim_config() -> SimulationConfig:
    """A small, fast simulation configuration."""
    return SimulationConfig(
        max_tuples_per_source=800, max_sim_time=2.0, warmup_fraction=0.1
    )


@pytest.fixture
def quick_runner_config() -> RunnerConfig:
    """A fast runner profile for integration tests."""
    return RunnerConfig(
        repeats=1,
        dilation=20.0,
        max_tuples_per_source=1500,
        max_sim_time=2.5,
    )
