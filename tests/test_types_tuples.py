"""Unit tests for schemas, tuples and predicates."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple, merge_origin
from repro.sps.types import DataType, Field, Schema
from repro.sps.types import uniform_schema


class TestDataType:
    def test_wire_sizes(self):
        assert DataType.INT.wire_size == 8
        assert DataType.DOUBLE.wire_size == 8
        assert DataType.STRING.wire_size == 24

    def test_numeric_flags(self):
        assert DataType.INT.is_numeric
        assert DataType.DOUBLE.is_numeric
        assert not DataType.STRING.is_numeric


class TestSchema:
    def test_width_and_lookup(self):
        schema = Schema(
            [Field("a", DataType.INT), Field("b", DataType.STRING)]
        )
        assert schema.width == 2
        assert schema.index_of("b") == 1
        assert schema.field("a").dtype is DataType.INT

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            Schema([Field("a", DataType.INT), Field("a", DataType.INT)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Schema([])

    def test_unknown_field(self):
        schema = Schema([Field("a", DataType.INT)])
        with pytest.raises(ConfigurationError, match="unknown field"):
            schema.index_of("zzz")

    def test_tuple_size_includes_header(self):
        schema = Schema([Field("a", DataType.INT)])
        assert schema.tuple_size_bytes() == 16 + 8

    def test_fields_of_type(self):
        schema = Schema(
            [
                Field("a", DataType.INT),
                Field("b", DataType.STRING),
                Field("c", DataType.INT),
            ]
        )
        assert [f.name for f in schema.fields_of_type(DataType.INT)] == [
            "a",
            "c",
        ]

    def test_equality_and_hash(self):
        one = Schema([Field("a", DataType.INT)])
        two = Schema([Field("a", DataType.INT)])
        assert one == two
        assert hash(one) == hash(two)

    def test_uniform_schema(self):
        schema = uniform_schema(3, DataType.DOUBLE)
        assert schema.width == 3
        assert all(f.dtype is DataType.DOUBLE for f in schema.fields)
        with pytest.raises(ConfigurationError):
            uniform_schema(0, DataType.INT)


class TestStreamTuple:
    def test_origin_defaults_to_event_time(self):
        tup = StreamTuple(values=(1,), event_time=5.0)
        assert tup.origin_time == 5.0

    def test_with_values_preserves_provenance(self):
        tup = StreamTuple(values=(1,), event_time=5.0, origin_time=2.0)
        derived = tup.with_values((9, 9))
        assert derived.values == (9, 9)
        assert derived.origin_time == 2.0
        assert derived.event_time == 5.0

    def test_with_key(self):
        tup = StreamTuple(values=(1,), event_time=0.0)
        keyed = tup.with_key("k")
        assert keyed.key == "k"
        assert tup.key is None  # original untouched

    def test_merge_origin_takes_earliest(self):
        early = StreamTuple(values=(1,), event_time=1.0, origin_time=1.0)
        late = StreamTuple(values=(2,), event_time=9.0, origin_time=9.0)
        assert merge_origin(early, late) == 1.0


class TestPredicate:
    def _tup(self, *values):
        return StreamTuple(values=values, event_time=0.0)

    @pytest.mark.parametrize(
        "function,literal,value,expected",
        [
            (FilterFunction.LT, 5, 4, True),
            (FilterFunction.LT, 5, 5, False),
            (FilterFunction.GT, 5, 6, True),
            (FilterFunction.LE, 5, 5, True),
            (FilterFunction.GE, 5, 4, False),
            (FilterFunction.EQ, 5, 5, True),
            (FilterFunction.NE, 5, 5, False),
        ],
    )
    def test_numeric_functions(self, function, literal, value, expected):
        predicate = Predicate(0, function, literal)
        assert predicate.evaluate(self._tup(value)) is expected

    @pytest.mark.parametrize(
        "function,literal,value,expected",
        [
            (FilterFunction.STARTS_WITH, "ab", "abc", True),
            (FilterFunction.STARTS_WITH, "b", "abc", False),
            (FilterFunction.ENDS_WITH, "bc", "abc", True),
            (FilterFunction.CONTAINS, "b", "abc", True),
            (FilterFunction.CONTAINS, "z", "abc", False),
        ],
    )
    def test_string_functions(self, function, literal, value, expected):
        predicate = Predicate(0, function, literal)
        assert predicate.evaluate(self._tup(value)) is expected

    def test_string_function_requires_string_literal(self):
        with pytest.raises(ConfigurationError):
            Predicate(0, FilterFunction.STARTS_WITH, 42)

    def test_invalid_selectivity_hint(self):
        with pytest.raises(ConfigurationError):
            Predicate(0, FilterFunction.LT, 5, selectivity_hint=1.5)

    def test_negative_field_index(self):
        with pytest.raises(ConfigurationError):
            Predicate(-1, FilterFunction.LT, 5)

    def test_applies_to(self):
        assert FilterFunction.LT.applies_to(DataType.INT)
        assert not FilterFunction.LT.applies_to(DataType.STRING)
        assert FilterFunction.CONTAINS.applies_to(DataType.STRING)
        assert not FilterFunction.CONTAINS.applies_to(DataType.DOUBLE)
        assert FilterFunction.EQ.applies_to(DataType.STRING)

    def test_callable_and_describe(self):
        predicate = Predicate(1, FilterFunction.GT, 0.5)
        assert predicate(self._tup(0, 0.9))
        assert "f1 > 0.5" == predicate.describe()
