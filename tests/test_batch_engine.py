"""End-to-end equivalence of the columnar micro-batch executor.

Batch mode's data plane runs on ideal time, so the simulated *results*
(sink result values, window firings) are batch-size invariant and — for
the vectorized standard operators — identical to the scalar engine's.
These tests pin that contract on purpose-built plans covering every
kernel (filter, map, flat-map, window) plus the scalar-fallback edge
cases the ISSUE calls out: batch_size=1, a final partial batch, a UDO
mid-pipeline, and empty streams.
"""

import math

import numpy as np
import pytest

from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.costs import OperatorCost
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.partitioning import ForwardPartitioner
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])

BATCH_SIZES = (1, 7, 64, 1024)


def run(plan, batch_size=None, tuples=400, seed=5, cluster=None, **cfg):
    cluster = cluster or homogeneous_cluster(num_nodes=2)
    cfg.setdefault("max_sim_time", 5.0)
    cfg.setdefault("keep_sink_values", True)
    engine = StreamEngine(
        plan,
        cluster,
        config=SimulationConfig(
            max_tuples_per_source=tuples, batch_size=batch_size, **cfg
        ),
        rng_factory=RngFactory(seed),
    )
    metrics = engine.run()
    return metrics, sink_values(engine), window_firings(engine)


def sink_values(engine):
    """All kept sink result values, order-normalised."""
    values = []
    for runtime in engine._runtimes:
        for logic in getattr(runtime.logic, "logics", None) or (
            runtime.logic,
        ):
            if isinstance(logic, SinkLogic):
                values.extend(logic.results)
    return sorted(
        values,
        key=lambda row: tuple(
            round(x, 6) if isinstance(x, float) else x for x in row
        ),
    )


def assert_rows_close(actual, expected):
    """Row-wise equality, floats to 1e-9 relative.

    Under parallelism + cost noise the scalar engine folds window sums
    in service-completion order while batch mode folds in emission
    order; the sums agree to the last few ulps but not bitwise. The
    idealized-recipe test below pins the bit-identical case.
    """
    assert len(actual) == len(expected)
    for row_a, row_e in zip(actual, expected):
        assert len(row_a) == len(row_e)
        for a, e in zip(row_a, row_e):
            if isinstance(a, float) and isinstance(e, float):
                assert math.isclose(a, e, rel_tol=1e-9, abs_tol=1e-12)
            else:
                assert a == e


def window_firings(engine):
    fired = 0
    for runtime in engine._runtimes:
        for logic in getattr(runtime.logic, "logics", None) or (
            runtime.logic,
        ):
            fired += getattr(logic, "windows_fired", 0)
    return fired


def pipeline_plan(parallelism=2, predicate=None):
    """source -> filter -> map -> windowed sum -> sink: every kernel."""
    plan = LogicalPlan("batch-pipeline")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=2000.0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "keep",
            predicate
            or Predicate(1, FilterFunction.GT, 0.25, selectivity_hint=0.75),
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.map_op(
            "scale",
            lambda values: (values[0], values[1] * 2.0),
            parallelism=parallelism,
            vector_fn=lambda cols: (cols[0], cols[1] * 2.0),
        )
    )
    plan.add_operator(
        builders.window_agg(
            "sum",
            TumblingTimeWindows(0.25),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink", keep_values=True))
    plan.connect("src", "keep")
    plan.connect("keep", "scale")
    plan.connect("scale", "sum")
    plan.connect("sum", "sink")
    return plan


def flatmap_plan(vectorized=True):
    """source -> flat-map (fan-out k%3) -> sink."""

    def explode(values):
        k, v = values
        return [(k, v + i) for i in range(int(k) % 3 + 1)]

    def explode_vec(cols):
        counts = (cols[0].astype(np.int64) % 3 + 1).astype(np.int64)
        k_out = np.repeat(cols[0], counts)
        base = np.repeat(cols[1], counts)
        offsets = np.concatenate(
            [np.arange(c, dtype=np.float64) for c in counts.tolist()]
        )
        return (k_out, base + offsets), counts

    plan = LogicalPlan("batch-flatmap")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=2000.0
        )
    )
    plan.add_operator(
        builders.flat_map(
            "explode",
            explode,
            expected_fanout=2.0,
            vector_fn=explode_vec if vectorized else None,
        )
    )
    plan.add_operator(builders.sink("sink", keep_values=True))
    plan.connect("src", "explode")
    plan.connect("explode", "sink")
    return plan


class AddOne(OperatorLogic):
    """A trivial UDO: per-tuple logic with no vectorized form."""

    def process(self, tup, now, port=0):
        return [tup.with_values((tup.values[0], tup.values[1] + 1.0))]


def udo_plan():
    """source -> UDO -> filter -> sink: fallback mid-pipeline."""
    plan = LogicalPlan("batch-udo")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=2000.0
        )
    )
    plan.add_operator(builders.udo("bump", AddOne))
    plan.add_operator(
        builders.filter_op(
            "keep", Predicate(1, FilterFunction.GT, 1.3)
        )
    )
    plan.add_operator(builders.sink("sink", keep_values=True))
    plan.connect("src", "bump")
    plan.connect("bump", "keep")
    plan.connect("keep", "sink")
    return plan


def idealized_plan():
    """The bit-identical recipe: parallelism 1, forward edges, no noise.

    With one subtask per operator, deterministic forward exchanges and
    zero cost noise, the scalar engine processes tuples in exactly the
    emission order batch mode folds them in, so window sums are
    bit-equal, not merely close.
    """
    quiet = OperatorCost(base_cpu_s=1e-9, cost_noise=0.0)
    plan = LogicalPlan("batch-idealized")
    plan.add_operator(
        builders.source(
            "src", kv_generator(), SCHEMA, event_rate=2000.0
        )
    )
    plan.add_operator(
        builders.map_op(
            "scale",
            lambda values: (values[0], values[1] * 2.0),
            cost=quiet,
            vector_fn=lambda cols: (cols[0], cols[1] * 2.0),
        )
    )
    plan.add_operator(
        builders.window_agg(
            "sum",
            TumblingTimeWindows(0.25),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            cost=quiet,
        )
    )
    plan.add_operator(builders.sink("sink", keep_values=True))
    plan.connect("src", "scale", ForwardPartitioner())
    plan.connect("scale", "sum", ForwardPartitioner())
    plan.connect("sum", "sink", ForwardPartitioner())
    return plan


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_pipeline_results_match_scalar(self, batch_size):
        _, scalar_values, scalar_fired = run(pipeline_plan())
        metrics, values, fired = run(
            pipeline_plan(), batch_size=batch_size
        )
        assert_rows_close(values, scalar_values)
        assert fired == scalar_fired
        assert metrics.results == len(values)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_idealized_recipe_is_bit_identical(self, batch_size):
        cluster = homogeneous_cluster(num_nodes=1)
        _, scalar_values, scalar_fired = run(
            idealized_plan(), cluster=cluster
        )
        _, values, fired = run(
            idealized_plan(), batch_size=batch_size, cluster=cluster
        )
        assert values == scalar_values  # exact, including float bits
        assert fired == scalar_fired

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_flatmap_vector_path_matches_scalar(self, batch_size):
        _, scalar_values, _ = run(flatmap_plan())
        _, values, _ = run(flatmap_plan(), batch_size=batch_size)
        assert values == scalar_values  # pure passthrough: exact

    def test_flatmap_vector_fn_is_result_transparent(self):
        _, vectorized, _ = run(flatmap_plan(True), batch_size=64)
        _, fallback, _ = run(flatmap_plan(False), batch_size=64)
        assert vectorized == fallback

    @pytest.mark.parametrize("batch_size", (1, 64))
    def test_udo_fallback_mid_pipeline(self, batch_size):
        _, scalar_values, _ = run(udo_plan())
        _, values, _ = run(udo_plan(), batch_size=batch_size)
        assert values == scalar_values


class TestBatchEdgeCases:
    def test_final_partial_batch(self):
        # 5 tuples under batch_size=1024: a single, very partial batch.
        scalar_metrics, scalar_values, _ = run(pipeline_plan(), tuples=5)
        metrics, values, _ = run(
            pipeline_plan(), batch_size=1024, tuples=5
        )
        assert_rows_close(values, scalar_values)
        assert metrics.source_events == scalar_metrics.source_events > 0

    def test_batch_size_one_matches_scalar(self):
        _, scalar_values, scalar_fired = run(pipeline_plan(), tuples=60)
        _, values, fired = run(
            pipeline_plan(), batch_size=1, tuples=60
        )
        assert_rows_close(values, scalar_values)
        assert fired == scalar_fired

    def test_empty_stream_through_every_kernel(self):
        # Nothing survives the filter: map, window and sink process an
        # empty stream, and metrics collection reports "no results" the
        # same way the scalar engine does (same error, same code path).
        from repro.common.errors import SimulationError

        drop_all = Predicate(1, FilterFunction.LT, -1.0)
        with pytest.raises(SimulationError, match="no latency samples"):
            run(pipeline_plan(predicate=drop_all))
        with pytest.raises(SimulationError, match="no latency samples"):
            run(pipeline_plan(predicate=drop_all), batch_size=64)

    def test_latency_and_throughput_populated(self):
        metrics, _, _ = run(pipeline_plan(), batch_size=64)
        assert metrics.results > 0
        assert metrics.latency.mean > 0
        assert metrics.throughput > 0
