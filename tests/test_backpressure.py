"""Tests for backpressure (bounded queues with source throttling)."""

import pytest

from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.udo import FunctionUDO
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def overloaded_plan(rate=20_000.0):
    """A single slow operator fed far beyond its capacity."""
    plan = LogicalPlan("overloaded")
    plan.add_operator(
        builders.source("src", kv_generator(), SCHEMA, event_rate=rate)
    )
    plan.add_operator(
        builders.udo(
            "slow",
            lambda: FunctionUDO(lambda state, t, now: [t]),
            cost_scale=10.0,  # 400us/tuple: ~2.5k/s capacity
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "slow")
    plan.connect("slow", "sink")
    return plan


def run(limit, tuples=3000, rate=20_000.0, seed=4):
    engine = StreamEngine(
        overloaded_plan(rate),
        homogeneous_cluster(num_nodes=2),
        config=SimulationConfig(
            max_tuples_per_source=tuples,
            max_sim_time=3.0,
            warmup_fraction=0.0,
            backpressure_queue_limit=limit,
        ),
        rng_factory=RngFactory(seed),
    )
    return engine.run()


class TestBackpressure:
    def test_queues_bounded(self):
        unbounded = run(limit=None)
        bounded = run(limit=64)
        assert unbounded.operator_queue_peak["slow"] > 200
        # Small overshoot allowed: deliveries in flight when the limit
        # trips still land.
        assert bounded.operator_queue_peak["slow"] < 64 + 32

    def test_latency_bounded_under_overload(self):
        unbounded = run(limit=None)
        bounded = run(limit=64)
        assert bounded.latency.p50 < unbounded.latency.p50 / 3

    def test_overload_shows_as_reduced_throughput(self):
        # A budget the throttled source cannot finish within the horizon
        # (capacity ~2.5k/s x 3s << 12000 tuples).
        bounded = run(limit=64, tuples=12_000)
        assert bounded.extras["throttled_arrivals"] > 0
        assert bounded.source_events < 12_000

    def test_no_throttling_when_unloaded(self):
        engine = StreamEngine(
            overloaded_plan(rate=500.0),  # well under capacity
            homogeneous_cluster(num_nodes=2),
            config=SimulationConfig(
                max_tuples_per_source=500,
                max_sim_time=4.0,
                warmup_fraction=0.0,
                backpressure_queue_limit=64,
            ),
            rng_factory=RngFactory(4),
        )
        metrics = engine.run()
        assert metrics.extras["throttled_arrivals"] == 0
        assert metrics.source_events == 500

    def test_results_still_flow_under_backpressure(self):
        bounded = run(limit=32)
        assert bounded.results > 100

    def test_limit_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(backpressure_queue_limit=1)
