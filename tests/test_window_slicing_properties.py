"""Property tests: slice-based window operators ≡ naive references.

PR 5 replaced per-window value buffering with slice-based incremental
aggregation and heap-scheduled firing. The contract is *bit-identical*
behaviour, so every property here drives the production logic and a
straightforward per-window reference implementation (the shape of the
pre-slicing code: buffer every value into every overlapping window,
scan-fire in key-insertion order) through the same randomized schedule
of arrivals, timer ticks and a final flush, and requires the emitted
tuple sequences to agree exactly — float-for-float, order included.

Schedules mix arrival-driven fires (a tuple lands after a window end)
with timer-driven fires (``on_time`` between arrivals), random
durations, slide ratios, key skew and value signs, per the PR's
acceptance criteria (≥200 examples per property).
"""

from __future__ import annotations

import math
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sps.operators.aggregate import WindowAggregateLogic
from repro.sps.operators.event_aggregate import EventTimeWindowAggregateLogic
from repro.sps.operators.join import WindowJoinLogic
from repro.sps.tuples import StreamTuple, merge_origin
from repro.sps.windows import (
    AggregateFunction,
    SlidingCountWindows,
    SlidingTimeWindows,
    TumblingCountWindows,
    TumblingTimeWindows,
)

# ------------------------------------------------------------ references


class _NaiveTimeAgg:
    """Per-window buffering processing-time aggregate (pre-slicing)."""

    def __init__(self, assigner, function):
        self.assigner = assigner
        self.function = function
        # key -> {window_start -> [values, min_origin, end]}
        self._state: dict[object, dict[float, list]] = {}

    def process(self, tup, now):
        key = tup.values[0]
        value = float(tup.values[1])
        per_key = self._state.setdefault(key, {})
        for window in self.assigner.assign(now):
            state = per_key.get(window.start)
            if state is None:
                state = per_key[window.start] = [[], math.inf, window.end]
            state[0].append(value)
            if tup.origin_time < state[1]:
                state[1] = tup.origin_time
        return self.on_time(now)

    def on_time(self, now):
        outputs = []
        for key, per_key in self._state.items():
            ready = [s for s, st_ in per_key.items() if st_[2] <= now]
            for start in sorted(ready):
                outputs.append(self._emit(key, per_key.pop(start), now))
        return outputs

    def flush(self, now):
        outputs = []
        for key, per_key in self._state.items():
            for start in sorted(per_key):
                outputs.append(self._emit(key, per_key[start], now))
        self._state.clear()
        return outputs

    def _emit(self, key, state, fire_time):
        return StreamTuple(
            values=(key, self.function.apply(state[0])),
            event_time=fire_time,
            origin_time=state[1],
            key=key,
            size_bytes=40.0,
        )


class _NaiveCountAgg:
    """Per-key deque count-window aggregate (pre-accumulator shape)."""

    def __init__(self, assigner, function):
        self.assigner = assigner
        self.function = function
        self._buffers: dict[object, deque] = {}
        self._since_fire: dict[object, int] = {}

    def process(self, tup, now):
        key = tup.values[0]
        value = float(tup.values[1])
        buffer = self._buffers.setdefault(key, deque())
        buffer.append((value, tup.origin_time))
        assigner = self.assigner
        if isinstance(assigner, TumblingCountWindows):
            if len(buffer) >= assigner.length:
                out = self._emit(key, list(buffer), now)
                buffer.clear()
                return [out]
            return []
        while len(buffer) > assigner.length:
            buffer.popleft()
        count = self._since_fire.get(key, 0) + 1
        if len(buffer) >= assigner.length and count >= assigner.slide:
            self._since_fire[key] = 0
            return [self._emit(key, list(buffer), now)]
        self._since_fire[key] = count
        return []

    def flush(self, now):
        outputs = []
        for key, buffer in self._buffers.items():
            if buffer:
                outputs.append(self._emit(key, list(buffer), now))
        self._buffers.clear()
        return outputs

    def _emit(self, key, items, now):
        values = [v for v, _ in items]
        return StreamTuple(
            values=(key, self.function.apply(values)),
            event_time=now,
            origin_time=min(origin for _, origin in items),
            key=key,
            size_bytes=40.0,
        )


class _NaiveEventAgg:
    """Per-window buffering event-time aggregate (pre-accumulator)."""

    def __init__(self, assigner, function, max_ooo, lateness):
        self.assigner = assigner
        self.function = function
        self.max_ooo = max_ooo
        self.lateness = lateness
        self._max_event_time = -math.inf
        self._fired_horizon = -math.inf
        self._state: dict[object, dict[float, list]] = {}
        self.late_dropped = 0

    def process(self, tup, now):
        if tup.event_time > self._max_event_time:
            self._max_event_time = tup.event_time
        windows = self.assigner.assign(tup.event_time)
        if not windows:
            return self._fire_ready(now)
        newest_end = max(w.end for w in windows)
        if newest_end + self.lateness <= self._fired_horizon:
            self.late_dropped += 1
            return self._fire_ready(now)
        key = tup.values[0]
        value = float(tup.values[1])
        per_key = self._state.setdefault(key, {})
        for window in windows:
            if window.end + self.lateness <= self._fired_horizon:
                continue
            state = per_key.get(window.start)
            if state is None:
                state = per_key[window.start] = [[], math.inf, window.end]
            state[0].append(value)
            if tup.origin_time < state[1]:
                state[1] = tup.origin_time
        return self._fire_ready(now)

    def _fire_ready(self, now):
        watermark = self._max_event_time - self.max_ooo
        outputs = []
        for key, per_key in self._state.items():
            ready = [
                s
                for s, st_ in per_key.items()
                if st_[2] + self.lateness <= watermark
            ]
            for start in sorted(ready):
                outputs.append(self._emit(key, per_key.pop(start), now))
        if watermark > self._fired_horizon:
            self._fired_horizon = watermark
        return outputs

    def on_time(self, now):
        if self._max_event_time > -math.inf:
            idle = now - 2.0 * self.max_ooo
            if idle > self._max_event_time:
                self._max_event_time = idle
        return self._fire_ready(now)

    def flush(self, now):
        outputs = []
        for key, per_key in self._state.items():
            for start in sorted(per_key):
                outputs.append(self._emit(key, per_key[start], now))
        self._state.clear()
        return outputs

    def _emit(self, key, state, now):
        return StreamTuple(
            values=(key, self.function.apply(state[0])),
            event_time=now,
            origin_time=state[1],
            key=key,
            size_bytes=40.0,
        )


class _NaiveJoin:
    """Per-(window, key) buffering symmetric hash join (pre-slicing)."""

    def __init__(self, assigner, cap):
        self.assigner = assigner
        self.cap = cap
        self._windows: dict[float, tuple[float, list]] = {}
        self.matches_emitted = 0

    def process(self, tup, now, port):
        self._expire(now)
        key = tup.values[0]
        outputs = []
        matches = 0
        for window in self.assigner.assign(now):
            entry = self._windows.get(window.start)
            if entry is None:
                entry = self._windows[window.start] = (window.end, [{}, {}])
            _, buffers = entry
            buffers[port].setdefault(key, []).append(tup)
            for candidate in buffers[1 - port].get(key, ()):
                if matches >= self.cap:
                    break
                left, right = (
                    (candidate, tup) if port == 1 else (tup, candidate)
                )
                outputs.append(
                    StreamTuple(
                        values=left.values + right.values,
                        event_time=now,
                        origin_time=merge_origin(left, right),
                        key=key,
                        size_bytes=left.size_bytes + right.size_bytes,
                    )
                )
                matches += 1
        self.matches_emitted += matches
        return outputs

    def _expire(self, now):
        for start in [
            s for s, (end, _) in self._windows.items() if end <= now
        ]:
            del self._windows[start]

    def on_time(self, now):
        self._expire(now)
        return []

    @property
    def buffered_windows(self):
        return len(self._windows)


# ------------------------------------------------------------ strategies

_RATIOS = (0.1, 0.125, 0.2, 0.25, 0.3, 0.5, 0.7, 1.0)

_VALUES = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, width=64
)


@st.composite
def _schedule(draw, max_steps=60, timers=True):
    """Monotone (now, step) schedule of arrivals and timer ticks.

    Steps are ('tuple', now, key, value, origin) or ('timer', now).
    Zero deltas are allowed (bursts at one instant), and key choice is
    skewed by drawing from a small alphabet of non-uniform weight.
    """
    num_keys = draw(st.integers(min_value=1, max_value=4))
    skew = draw(st.integers(min_value=0, max_value=2))
    steps = []
    now = 0.0
    n = draw(st.integers(min_value=1, max_value=max_steps))
    for _ in range(n):
        now += draw(
            st.sampled_from((0.0, 0.001, 0.0133, 0.05, 0.11, 0.24))
        )
        if timers and draw(st.booleans()) and draw(st.booleans()):
            steps.append(("timer", now))
            continue
        key = draw(st.integers(min_value=0, max_value=num_keys - 1))
        if skew and key > 0 and draw(st.booleans()):
            key = 0  # pile extra mass on one hot key
        value = draw(_VALUES)
        origin = now - draw(st.sampled_from((0.0, 0.002, 0.05)))
        steps.append(("tuple", now, key, value, origin))
    return steps


def _time_assigner(draw):
    duration = draw(
        st.sampled_from((0.02, 0.05, 0.1, 0.13, 0.25, 0.4))
    )
    ratio = draw(st.sampled_from(_RATIOS))
    if ratio >= 1.0:
        return draw(
            st.sampled_from(
                (
                    TumblingTimeWindows(duration),
                    SlidingTimeWindows(duration, duration),
                )
            )
        )
    return SlidingTimeWindows(duration, duration * ratio)


_time_assigners = st.composite(_time_assigner)()

_functions = st.sampled_from(list(AggregateFunction))


def _tuple_of(step):
    _, now, key, value, origin = step
    return StreamTuple(
        values=(key, value),
        event_time=now,
        origin_time=origin,
        key=key,
        size_bytes=24.0,
    )


def _assert_same(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.values == want.values
        assert got.event_time == want.event_time
        assert got.origin_time == want.origin_time
        assert got.key == want.key
        assert got.size_bytes == want.size_bytes


# ------------------------------------------------------------ properties


class TestAssignIndexRange:
    @given(
        assigner=_time_assigners,
        times=st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_assign(self, assigner, times):
        """The index interval covers exactly assign()'s windows,

        including both boundary directions of the fp rounding."""
        for t in times:
            lo, hi = assigner.assign_index_range(t)
            spans = [
                (assigner.window_start(i), assigner.window_end(i))
                for i in range(lo, hi + 1)
            ]
            assert spans == [
                (w.start, w.end) for w in assigner.assign(t)
            ]


class TestSlicedTimeAggEquivalence:
    @given(
        assigner=_time_assigners,
        function=_functions,
        steps=_schedule(),
    )
    @settings(max_examples=250, deadline=None)
    def test_equals_naive_per_window(self, assigner, function, steps):
        """Slice-based aggregation emits bit-identical tuples, in the

        same order, as buffering every value into every window —
        across timer-driven and arrival-driven fires and the flush."""
        sliced = WindowAggregateLogic(
            assigner, function, value_field=1, key_field=0
        )
        naive = _NaiveTimeAgg(assigner, function)
        now = 0.0
        for step in steps:
            now = step[1]
            if step[0] == "timer":
                _assert_same(sliced.on_time(now), naive.on_time(now))
            else:
                tup = _tuple_of(step)
                _assert_same(
                    sliced.process(tup, now), naive.process(tup, now)
                )
        _assert_same(sliced.flush(now + 1.0), naive.flush(now + 1.0))

    @given(
        assigner=_time_assigners,
        steps=_schedule(),
    )
    @settings(max_examples=200, deadline=None)
    def test_fast_sums_match_values(self, assigner, steps):
        """exact_sums=False re-associates the sum fold: results must

        match the exact fold to float tolerance (and bit-exactly
        whenever a window spans a single slice)."""
        exact = WindowAggregateLogic(
            assigner, AggregateFunction.SUM, value_field=1, key_field=0
        )
        fast = WindowAggregateLogic(
            assigner,
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            exact_sums=False,
        )
        now = 0.0
        for step in steps:
            now = step[1]
            if step[0] == "timer":
                got, want = fast.on_time(now), exact.on_time(now)
            else:
                tup = _tuple_of(step)
                got, want = fast.process(tup, now), exact.process(
                    tup, now
                )
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert g.values[0] == w.values[0]
                assert g.values[1] == pytest.approx(
                    w.values[1], rel=1e-9, abs=1e-6
                )


class TestCountAggEquivalence:
    @given(
        length=st.integers(min_value=1, max_value=8),
        ratio=st.floats(min_value=0.1, max_value=1.0),
        tumbling=st.booleans(),
        function=_functions,
        steps=_schedule(timers=False),
    )
    @settings(max_examples=250, deadline=None)
    def test_equals_naive_buffering(
        self, length, ratio, tumbling, function, steps
    ):
        """Accumulator/monotonic-deque count windows reproduce the

        list-buffering reference exactly, including flush of partial
        buffers and the running min-origin."""
        if tumbling:
            assigner = TumblingCountWindows(length)
        else:
            slide = max(1, min(length, round(length * ratio)))
            assigner = SlidingCountWindows(length, slide)
        incremental = WindowAggregateLogic(
            assigner, function, value_field=1, key_field=0
        )
        naive = _NaiveCountAgg(assigner, function)
        now = 0.0
        for step in steps:
            now = step[1]
            tup = _tuple_of(step)
            _assert_same(
                incremental.process(tup, now), naive.process(tup, now)
            )
        _assert_same(
            incremental.flush(now + 1.0), naive.flush(now + 1.0)
        )


class TestEventTimeAggEquivalence:
    @given(
        assigner=_time_assigners,
        function=_functions,
        max_ooo=st.sampled_from((0.0, 0.01, 0.05, 0.2)),
        lateness=st.sampled_from((0.0, 0.02)),
        steps=_schedule(),
        disorder=st.lists(
            st.sampled_from((0.0, 0.005, 0.04, 0.15)),
            min_size=60,
            max_size=60,
        ),
    )
    @settings(max_examples=250, deadline=None)
    def test_equals_naive_per_window(
        self, assigner, function, max_ooo, lateness, steps, disorder
    ):
        """Accumulator state + heap firing reproduces the buffering

        reference under out-of-order event times, late drops, idle
        watermark advancement and flush."""
        incremental = EventTimeWindowAggregateLogic(
            assigner,
            function,
            value_field=1,
            key_field=0,
            max_out_of_orderness=max_ooo,
            allowed_lateness=lateness,
        )
        naive = _NaiveEventAgg(assigner, function, max_ooo, lateness)
        now = 0.0
        i = 0
        for step in steps:
            now = step[1]
            if step[0] == "timer":
                _assert_same(
                    incremental.on_time(now), naive.on_time(now)
                )
                continue
            _, _, key, value, origin = step
            event_time = max(now - disorder[i % len(disorder)], 0.0)
            i += 1
            tup = StreamTuple(
                values=(key, value),
                event_time=event_time,
                origin_time=origin,
                key=key,
                size_bytes=24.0,
            )
            _assert_same(
                incremental.process(tup, now), naive.process(tup, now)
            )
            assert incremental.late_dropped == naive.late_dropped
        _assert_same(
            incremental.flush(now + 1.0), naive.flush(now + 1.0)
        )


class TestJoinEquivalence:
    @given(
        assigner=_time_assigners,
        cap=st.sampled_from((1, 3, 64)),
        steps=_schedule(timers=False),
        ports=st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=60,
            max_size=60,
        ),
        timer_every=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=250, deadline=None)
    def test_equals_naive_per_window(
        self, assigner, cap, steps, ports, timer_every
    ):
        """Slice-buffered probing emits the exact per-window match

        sequence (duplicates per shared window included), honours the
        probe cap identically, and tracks the same live-window count."""
        sliced = WindowJoinLogic(
            assigner,
            left_key_field=0,
            right_key_field=0,
            max_matches_per_probe=cap,
        )
        naive = _NaiveJoin(assigner, cap)
        i = 0
        for step in steps:
            now = step[1]
            tup = _tuple_of(step)
            port = ports[i % len(ports)]
            i += 1
            if timer_every and i % timer_every == 0:
                sliced.on_time(now)
                naive.on_time(now)
                assert sliced.buffered_windows == naive.buffered_windows
            _assert_same(
                sliced.process(tup, now, port),
                naive.process(tup, now, port),
            )
            assert sliced.matches_emitted == naive.matches_emitted
            assert sliced.buffered_windows == naive.buffered_windows
