"""Public-API hygiene: exports resolve, public items are documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


class TestExports:
    @pytest.mark.parametrize(
        "module", MODULES, ids=lambda m: m.__name__
    )
    def test_all_names_resolve(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ lists {name!r} but the "
                "module does not define it"
            )

    def test_top_level_surface(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", MODULES, ids=lambda m: m.__name__
    )
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} has no module docstring"
        )

    @pytest.mark.parametrize(
        "module", MODULES, ids=lambda m: m.__name__
    )
    def test_public_items_documented(self, module):
        undocumented = []
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if getattr(item, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
                continue
            if inspect.isclass(item):
                for member_name, member in vars(item).items():
                    if member_name.startswith("_"):
                        continue
                    if not inspect.isfunction(member):
                        continue
                    # getdoc walks the MRO: overrides inherit the
                    # base-class contract's documentation.
                    doc = inspect.getdoc(getattr(item, member_name))
                    if not (doc and doc.strip()):
                        undocumented.append(f"{name}.{member_name}")
        assert not undocumented, (
            f"{module.__name__}: undocumented public items: "
            f"{sorted(undocumented)}"
        )
