"""Integration tests: the full PDSP-Bench workflow and experiment shapes.

These are scaled-down versions of the paper's experiments asserting the
*qualitative observations* (O1-O9) hold; the benchmark harness runs the
full-size versions.
"""

import numpy as np
import pytest

from repro.cluster import homogeneous_cluster
from repro.core import BenchmarkRunner, PDSPBench, RunnerConfig
from repro.core.experiments import figure3_top, figure5
from repro.core.experiments.exp3 import build_labelled_corpus
from repro.ml.models import GNNCostModel, LinearRegressionModel
from repro.report import render_figure
from repro.workload import QueryStructure, RuleBasedEnumeration


QUICK = RunnerConfig(
    repeats=1, dilation=25.0, max_tuples_per_source=2500,
    max_sim_time=3.0,
)


class TestFullWorkflow:
    """The Figure 1 workflow: configure -> generate -> run -> store ->

    train -> infer, end to end."""

    def test_workflow_end_to_end(self, tmp_path):
        bench = PDSPBench.homogeneous(
            num_nodes=4,
            storage_dir=str(tmp_path / "db"),
            runner_config=QUICK,
        )
        # 1. benchmark an application and a synthetic PQP
        app_record = bench.run_application("TPCH", parallelism=2)
        syn_record = bench.run_synthetic(
            QueryStructure.LINEAR, parallelism=2
        )
        assert app_record.metrics["mean_median_latency_ms"] > 0
        assert syn_record.metrics["mean_median_latency_ms"] > 0
        # 2. generate a training corpus and persist it
        corpus = bench.build_corpus(
            count=50,
            structures=[
                QueryStructure.LINEAR,
                QueryStructure.TWO_WAY_JOIN,
            ],
        )
        # 3. train a model and predict
        bench.ml_manager.models = [LinearRegressionModel()]
        reports = bench.train_models(corpus)
        assert reports["LR"].q_error["median"] < 5.0
        # 4. everything survived in the store
        assert bench.store["runs"].count() == 2
        assert bench.store["corpus"].count() == 50
        assert bench.store["model_reports"].count() == 1
        # 5. a fresh instance over the same directory sees the data
        reopened = PDSPBench.homogeneous(
            num_nodes=4,
            storage_dir=str(tmp_path / "db"),
            runner_config=QUICK,
        )
        assert len(reopened.load_corpus()) == 50


class TestObservationO1O2:
    """O1: parallelism speeds up join queries; filters-only stay flat.

    O2: gains saturate beyond a threshold."""

    @pytest.fixture(scope="class")
    def figure(self):
        return figure3_top(
            cluster=homogeneous_cluster("m510", 10),
            runner_config=QUICK,
            structures=(
                QueryStructure.LINEAR,
                QueryStructure.THREE_WAY_JOIN,
            ),
            categories={"XS": 1, "M": 4, "XL": 16, "XXL": 32},
            seed=21,
        )

    def test_join_query_speeds_up(self, figure):
        join = figure.series_by_label("three_way_join")
        assert join.value_at("M") < join.value_at("XS")

    def test_linear_query_flat(self, figure):
        linear = figure.series_by_label("linear")
        low, high = linear.value_at("XS"), linear.value_at("XL")
        assert high < 3 * low  # no saturation cliff either way

    def test_join_gains_saturate(self, figure):
        """O2: the XS->M gain dwarfs the XL->XXL gain."""
        join = figure.series_by_label("three_way_join")
        early_gain = join.value_at("XS") - join.value_at("M")
        late_gain = abs(join.value_at("XL") - join.value_at("XXL"))
        assert early_gain > late_gain

    def test_render(self, figure):
        assert "fig3-top" in render_figure(figure)


class TestObservationO1RealWorld:
    """Data-intensive UDO apps gain more from parallelism than

    standard-operator apps (O1, real-world half)."""

    def test_sg_gains_wc_flat(self):
        runner = BenchmarkRunner(homogeneous_cluster("m510", 10), QUICK)
        wc_low = runner.measure_app("WC", 1)["mean_median_latency_ms"]
        wc_high = runner.measure_app("WC", 16)["mean_median_latency_ms"]
        sg_low = runner.measure_app("SG", 1)["mean_median_latency_ms"]
        sg_high = runner.measure_app("SG", 16)["mean_median_latency_ms"]
        sg_speedup = sg_low / sg_high
        wc_speedup = wc_low / max(wc_high, 1e-9)
        assert sg_speedup > 2.0  # SG is saturated at p=1
        assert sg_speedup > 2 * wc_speedup  # WC has little to gain


class TestObservationO8:
    """GNN beats the flat models on structured queries."""

    def test_gnn_best_median_qerror(self):
        figure = figure5(
            cluster=homogeneous_cluster("m510", 10), corpus_size=400,
            seed=5,
        )
        by_label = {
            s.label: float(np.nanmedian(s.y)) for s in figure.series
        }
        assert set(by_label) == {"LR", "MLP", "RF", "GNN"}
        assert by_label["GNN"] == min(by_label.values())


class TestObservationO9:
    """Rule-based enumeration trains the GNN better than random at a

    small corpus size (the data-efficiency behind O9)."""

    def test_rule_based_more_data_efficient(self):
        cluster = homogeneous_cluster("m510", 4)
        seen = [s for s in QueryStructure if s.is_seen]
        test = build_labelled_corpus(
            cluster, 120, list(QueryStructure),
            RuleBasedEnumeration(), seed=77,
        )
        from repro.workload import RandomEnumeration

        scores = {}
        for name, strategy in (
            ("rule", RuleBasedEnumeration()),
            ("random", RandomEnumeration()),
        ):
            corpus = build_labelled_corpus(
                cluster, 60, seen, strategy, seed=11
            )
            rng = np.random.default_rng(0)
            train, val, _ = corpus.split(rng, test_fraction=0.02)
            model = GNNCostModel(max_epochs=150)
            model.fit(train, val, seed=0)
            scores[name] = model.evaluate(test)["median"]
        assert scores["rule"] < scores["random"]
