"""Fault tolerance: checkpoints, recovery, delivery guarantees, exp5.

Covers the aligned-barrier checkpoint protocol end to end (state store
lifecycle, barrier alignment, snapshot/restore), the node-failure
recovery path under both delivery guarantees, the checkpoint-off loss
accounting the chaos failure now performs, the FT7xx readiness rules,
the observability hooks, and the exp5 recovery grid.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.analysis import analyze_plan
from repro.cluster import homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.core.experiments.exp5 import (
    ft_workload_plan,
    recovery_grid,
    run_ft_cell,
)
from repro.core.runner import RunnerConfig
from repro.ft import (
    CheckpointRecord,
    StateStore,
    estimate_items,
    validate_delivery,
)
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.operators.sink import SinkLogic
from repro.sps.types import DataType, Field, Schema
from tests.conftest import kv_generator

_SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])

#: Failure windows for the standard FT workload (see
#: :func:`repro.core.experiments.exp5.ft_workload_plan`): source
#: generation completes by ~0.1 s simulated and the aggregation backlog
#: drains by ~0.55 s, so these failures always find work in flight.
_EARLY = "failure:at=0.3,duration=0.1"
_LATE = "failure:at=0.45,duration=0.1"


def _run(
    scenario=None,
    delivery="exactly_once",
    checkpoint_interval=0.05,
    seed=7,
    **cfg_kwargs,
):
    config = SimulationConfig(
        max_tuples_per_source=300,
        max_sim_time=3.0,
        warmup_fraction=0.0,
        keep_sink_values=True,
        scenario=scenario,
        delivery=delivery,
        checkpoint_interval=checkpoint_interval,
        **cfg_kwargs,
    )
    engine = StreamEngine(
        ft_workload_plan(),
        homogeneous_cluster(num_nodes=4),
        config=config,
        rng_factory=RngFactory(seed),
    )
    metrics = engine.run()
    values = sorted(
        v
        for rt in engine._runtimes
        if isinstance(rt.logic, SinkLogic)
        for v in rt.logic.results
    )
    return metrics, values


class TestConfigValidation:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError, match="positive"):
            SimulationConfig(checkpoint_interval=0.0)

    def test_rejects_unknown_delivery(self):
        with pytest.raises(ValueError, match="delivery"):
            SimulationConfig(delivery="maybe_once")

    def test_rejects_batch_mode(self):
        with pytest.raises(ConfigurationError, match="batch"):
            SimulationConfig(checkpoint_interval=0.1, batch_size=64)

    def test_rejects_autoscale(self):
        with pytest.raises(ConfigurationError, match="rescal"):
            SimulationConfig(
                checkpoint_interval=0.1, autoscale="reactive:high=4"
            )

    def test_rejects_backpressure(self):
        with pytest.raises(ConfigurationError, match="backpressure"):
            SimulationConfig(
                checkpoint_interval=0.1, backpressure_queue_limit=64
            )

    def test_runner_config_validates(self):
        with pytest.raises(ConfigurationError, match="checkpoint_ms"):
            RunnerConfig(checkpoint_ms=-1.0)
        with pytest.raises(ValueError, match="delivery"):
            RunnerConfig(delivery="exactly_twice")
        cfg = RunnerConfig(checkpoint_ms=50.0, delivery="at_least_once")
        assert cfg.checkpoint_ms == 50.0


class TestStateStore:
    def test_lifecycle(self):
        store = StateStore()
        record = store.begin(1.0)
        assert store.active is record
        with pytest.raises(RuntimeError):
            store.begin(1.5)
        store.add_snapshot(3, [("a", 1.0)])
        record.emit_seqs[3] = 7
        completed = store.complete(2.0)
        assert completed is record
        assert store.active is None
        assert completed.duration_s == pytest.approx(1.0)
        assert completed.state_items == 1
        assert store.latest() is completed
        assert store.duration_mean_s() == pytest.approx(1.0)

    def test_skip_and_abort(self):
        store = StateStore()
        store.skip()
        record = store.begin(1.0)
        store.abort()
        assert store.active is None
        assert store.latest() is None
        assert store.skipped == 1
        assert record.completed_at == 0.0

    def test_estimate_items(self):
        assert estimate_items(None) == 0
        assert estimate_items([("a", 1), ("b", 2)]) == 2
        assert estimate_items({"x": 1}) == 1
        assert estimate_items(([1, 2, 3], None, 0.5)) == 3
        assert estimate_items(42) == 1

    def test_validate_delivery(self):
        validate_delivery("exactly_once")
        validate_delivery("at_least_once")
        with pytest.raises(ValueError):
            validate_delivery("at_most_once")


class TestCheckpointing:
    def test_checkpoints_complete_without_failure(self):
        metrics, values = _run()
        ft = metrics.extras["ft"]
        assert ft["checkpoints_completed"] >= 1
        assert ft["recoveries"] == 0
        assert ft["replayed_events"] == 0
        assert ft["state_items"] > 0
        assert ft["state_bytes"] > 0
        assert len(ft["log"]) == ft["checkpoints_completed"]
        for entry in ft["log"]:
            assert entry["duration_s"] > 0

    def test_barriers_do_not_change_results(self):
        _, plain = _run(checkpoint_interval=None)
        _, checkpointed = _run()
        assert checkpointed == plain

    def test_no_ft_extras_when_off(self):
        metrics, _ = _run(checkpoint_interval=None)
        assert "ft" not in metrics.extras

    def test_run_twice_is_bit_identical(self):
        m1, v1 = _run(scenario=_LATE)
        m2, v2 = _run(scenario=_LATE)
        assert v1 == v2
        assert json.dumps(m1.to_dict(), sort_keys=True) == json.dumps(
            m2.to_dict(), sort_keys=True
        )


class TestRecovery:
    def test_exactly_once_matches_failure_free(self):
        _, oracle = _run(checkpoint_interval=None)
        metrics, recovered = _run(scenario=_LATE)
        ft = metrics.extras["ft"]
        assert ft["recoveries"] == 1
        assert ft["replayed_events"] > 0
        assert ft["recovery_time_s"] > 0
        assert ft["duplicates_dropped"] > 0
        assert ft["duplicate_results"] == 0
        assert ft["lost_results"] == 0
        assert recovered == oracle

    def test_recovery_restores_from_completed_checkpoint(self):
        metrics, _ = _run(scenario=_LATE)
        ft = metrics.extras["ft"]
        # The 50 ms cadence completes a checkpoint before the 0.45 s
        # failure, so recovery replays a strict suffix of the log.
        assert ft["checkpoints_completed"] >= 1
        assert 0 < ft["replayed_events"] < 300

    def test_recovery_without_checkpoint_replays_everything(self):
        metrics, recovered = _run(scenario=_EARLY, checkpoint_interval=0.2)
        ft = metrics.extras["ft"]
        assert ft["recoveries"] == 1
        assert ft["replayed_events"] == 300
        _, oracle = _run(checkpoint_interval=None)
        assert recovered == oracle

    def test_at_least_once_is_superset_with_duplicates(self):
        _, oracle = _run(checkpoint_interval=None)
        metrics, recovered = _run(scenario=_LATE, delivery="at_least_once")
        ft = metrics.extras["ft"]
        missing = Counter(oracle) - Counter(recovered)
        extra = Counter(recovered) - Counter(oracle)
        assert not missing
        assert sum(extra.values()) == ft["duplicate_results"]
        assert ft["duplicate_results"] > 0
        assert ft["duplicates_dropped"] == 0
        assert ft["lost_results"] == 0


class TestFailureWithoutCheckpointing:
    def test_state_loss_is_accounted(self):
        metrics, values = _run(scenario=_LATE, checkpoint_interval=None)
        loss = metrics.extras["elastic"]["state_loss"]
        assert loss["failed_subtasks"] > 0
        assert loss["lost_keys"] > 0
        assert "ft" not in metrics.extras

    def test_loss_means_fewer_results(self):
        _, oracle = _run(checkpoint_interval=None)
        _, lossy = _run(scenario=_LATE, checkpoint_interval=None)
        missing = Counter(oracle) - Counter(lossy)
        assert missing  # the failure really dropped state/queued input

    def test_failed_sources_account_dropped_tuples(self):
        # A 1.0 s outage covers the whole generation span, so a source
        # failing at t=0.02 drops most of its budget.
        metrics, _ = _run(
            scenario="failure:at=0.02,duration=1.0",
            checkpoint_interval=None,
        )
        loss = metrics.extras["elastic"]["state_loss"]
        total = (
            loss["lost_source_tuples"]
            + loss["lost_keys"]
            + loss["lost_tuples"]
        )
        assert total > 0


class TestObservability:
    def test_obs_summary_has_ft_section(self):
        from repro.obs import EngineObserver

        observer = EngineObserver(sample_interval=0.1)
        config = SimulationConfig(
            max_tuples_per_source=300,
            max_sim_time=3.0,
            warmup_fraction=0.0,
            scenario=_LATE,
            checkpoint_interval=0.05,
        )
        engine = StreamEngine(
            ft_workload_plan(),
            homogeneous_cluster(num_nodes=4),
            config=config,
            rng_factory=RngFactory(7),
            observer=observer,
        )
        metrics = engine.run()
        summary = observer.summary()
        ft = summary["ft"]
        assert ft["checkpoints"] == metrics.extras["ft"][
            "checkpoints_completed"
        ]
        assert ft["recoveries"] == 1
        assert ft["recovery_time_s"] > 0
        assert ft["replayed_events"] == metrics.extras["ft"][
            "replayed_events"
        ]

    def test_sanitized_run_is_clean_and_labels_incarnations(self):
        ft, _ = run_ft_cell(
            homogeneous_cluster(num_nodes=4), _LATE, 0.05, "exactly_once", 7
        )
        assert ft["determinism_errors"] == 0
        assert ft["recoveries"] == 1


class TestFtLintRules:
    def _plan(self, replayable=True):
        plan = ft_workload_plan()
        if not replayable:
            plan.operator("src").metadata["replayable"] = False
        return plan

    def test_silent_without_interval(self):
        report = analyze_plan(self._plan(replayable=False))
        assert not [d for d in report.diagnostics if d.code.startswith("FT")]

    def test_ft701_non_replayable_source(self):
        report = analyze_plan(
            self._plan(replayable=False), checkpoint_interval=0.1
        )
        codes = [d.code for d in report.diagnostics]
        assert "FT701" in codes

    def test_ft701_via_builder_flag(self):
        from repro.sps.logical import LogicalPlan

        plan = LogicalPlan("nonreplayable")
        plan.add_operator(
            builders.source(
                "src",
                kv_generator(),
                _SCHEMA,
                event_rate=1000.0,
                replayable=False,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "sink")
        report = analyze_plan(plan, checkpoint_interval=0.1)
        assert "FT701" in [d.code for d in report.diagnostics]

    def test_ft702_opaque_udo_state(self):
        from repro.sps.operators.base import OperatorLogic

        class OpaqueLogic(OperatorLogic):
            def process(self, tup, now, port=0):
                return [tup]

        plan = LogicalPlanFactory.opaque_udo(OpaqueLogic)
        report = analyze_plan(plan, checkpoint_interval=0.1)
        assert "FT702" in [d.code for d in report.diagnostics]

    def test_ft703_interval_below_round_trip(self):
        report = analyze_plan(self._plan(), checkpoint_interval=1e-6)
        codes = [d.code for d in report.diagnostics]
        assert "FT703" in codes
        report_ok = analyze_plan(self._plan(), checkpoint_interval=1.0)
        assert "FT703" not in [d.code for d in report_ok.diagnostics]


class LogicalPlanFactory:
    """Tiny helpers building deliberately deficient plans."""

    @staticmethod
    def opaque_udo(logic_cls):
        from repro.sps.logical import LogicalPlan

        plan = LogicalPlan("opaque-udo")
        plan.add_operator(
            builders.source(
                "src", kv_generator(), _SCHEMA, event_rate=1000.0
            )
        )
        plan.add_operator(builders.udo("u", logic_cls, parallelism=1))
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "u")
        plan.connect("u", "sink")
        return plan


class TestExp5Grid:
    def test_quick_grid_runs_and_is_deterministic(self):
        report = recovery_grid(quick=True)
        again = recovery_grid(quick=True)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )
        assert len(report["cells"]) == 2
        for cell in report["cells"]:
            assert cell["determinism_errors"] == 0
            assert cell["recoveries"] == 1
            assert cell["checkpoints"] >= 1
            assert cell["missing_vs_oracle"] == 0
            if cell["delivery"] == "exactly_once":
                assert cell["extra_vs_oracle"] == 0
            else:
                assert (
                    cell["extra_vs_oracle"] == cell["duplicate_results"]
                )

    def test_grid_workers_match_serial(self):
        kwargs = dict(
            intervals_ms=(50.0,),
            scenarios=(("late-failure", _LATE),),
            quick=False,
        )
        serial = recovery_grid(workers=1, **kwargs)
        pooled = recovery_grid(workers=2, **kwargs)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_cli_exp5_quick(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "exp5.json"
        code = main(["exp5", "--quick", "--json-out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["experiment"] == "exp5"
        assert all(
            c["missing_vs_oracle"] == 0 for c in report["cells"]
        )
        assert "exp5" in capsys.readouterr().out


class TestRunnerIntegration:
    def test_checkpoint_ms_flows_through_runner(self):
        from repro.core.runner import BenchmarkRunner

        runner = BenchmarkRunner(
            homogeneous_cluster(num_nodes=4),
            RunnerConfig(
                repeats=1,
                max_tuples_per_source=300,
                max_sim_time=3.0,
                warmup_fraction=0.0,
                checkpoint_ms=50.0,
                scenario=_LATE,
            ),
        )
        runs = runner.run_plan(ft_workload_plan())
        ft = runs[0].extras["ft"]
        assert ft["checkpoint_interval"] == pytest.approx(0.05)
        assert ft["recoveries"] == 1

    def test_checkpoint_record_dataclass(self):
        record = CheckpointRecord(ckpt_id=1, triggered_at=0.5)
        record.completed_at = 0.75
        assert record.duration_s == pytest.approx(0.25)
